"""The VOV automatic design manager (§2.2.2), miniaturized.

VOV's central abstraction is the *trace*: a flat, project-wide bipartite
record of tool invocations and the files they read and wrote.  When a file is
modified, *retracing* consults the trace database, computes the affected set,
and re-runs the associated tool invocations **updating objects in place** —
no versioning, no branching history, no per-entity context.  Those omissions
are exactly what Table I charges VOV with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PapyrusError


@dataclass(frozen=True)
class Trace:
    """One recorded tool invocation."""

    tool: str
    options: tuple[str, ...]
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]


#: A runner re-executes one trace given current object values; returns the
#: new output payloads by name.
Runner = Callable[[Trace, dict[str, Any]], dict[str, Any]]


class VovManager:
    """A flat (non-hierarchical) trace database over an in-place store."""

    def __init__(self):
        self.store: dict[str, Any] = {}      # name -> payload, in place
        self.traces: list[Trace] = []        # one flat project-wide list
        self._producer: dict[str, Trace] = {}
        self.retraced: int = 0               # invocations re-run so far

    # ------------------------------------------------------------- recording

    def write(self, name: str, payload: Any) -> None:
        """In-place update (VOV has no version history)."""
        self.store[name] = payload

    def record(self, trace: Trace, outputs: dict[str, Any]) -> None:
        """Record a completed tool invocation and its outputs."""
        self.traces.append(trace)
        for name in trace.outputs:
            self._producer[name] = trace
            self.store[name] = outputs[name]

    # -------------------------------------------------------------- queries

    def affected_set(self, changed: str) -> list[str]:
        affected: list[str] = []
        seen: set[str] = set()
        frontier = [changed]
        while frontier:
            current = frontier.pop()
            for trace in self.traces:
                if current not in trace.inputs:
                    continue
                for out in trace.outputs:
                    if out not in seen:
                        seen.add(out)
                        affected.append(out)
                        frontier.append(out)
        return sorted(affected)

    def example_traces(self, tool: str) -> list[Trace]:
        """VOV's learning-from-examples aid: past invocations of a tool."""
        return [t for t in self.traces if t.tool == tool]

    # ------------------------------------------------------------- retracing

    def retrace(self, changed: str, new_payload: Any, runner: Runner) -> list[str]:
        """Re-establish consistency after ``changed`` is modified.

        Re-runs affected invocations in dependency order, updating outputs in
        place.  Returns the regenerated object names.
        """
        self.write(changed, new_payload)
        affected = set(self.affected_set(changed))
        regenerated: list[str] = []
        done: set[str] = set()

        def rebuild(name: str) -> None:
            if name in done or name not in affected:
                return
            trace = self._producer.get(name)
            if trace is None:
                raise PapyrusError(f"no trace produced {name!r}")
            for parent in trace.inputs:
                rebuild(parent)
            for out in trace.outputs:
                done.add(out)
            outputs = runner(trace, self.store)
            self.retraced += 1
            for out, payload in outputs.items():
                self.store[out] = payload
                regenerated.append(out)

        for name in sorted(affected):
            rebuild(name)
        return regenerated
