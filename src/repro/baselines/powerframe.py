"""A PowerFrame miniature (§2.2.1, Fig 2.1).

PowerFrame automates routine tool sequences through stored *templates*:
annotated directed graphs whose edges carry ``and`` / ``or`` / ``xor``
operators and priorities, plus a ``loop`` process operator.  Data management
offers *workspaces* (private/group), *filters* and *configurations*.  What it
lacks — history tied to versions, exploration support, distribution — is what
Table I records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import PapyrusError

Action = Callable[[dict[str, Any]], Any]
#: For ``or`` edges: which successors to take (default: all of them).
Chooser = Callable[[str, list[str]], list[str]]


@dataclass
class TemplateNode:
    """One tool invocation in a template."""

    name: str
    action: Action
    #: Loop operator: iterate the action over the context list named here.
    loop_over: str | None = None


@dataclass
class _EdgeGroup:
    operator: str                       # "and" | "or" | "xor"
    successors: list[tuple[str, int]]   # (node, priority)


@dataclass
class Template:
    """An annotated directed graph of tool invocations."""

    name: str
    nodes: dict[str, TemplateNode] = field(default_factory=dict)
    edges: dict[str, _EdgeGroup] = field(default_factory=dict)
    start: str | None = None

    def node(self, name: str, action: Action,
             loop_over: str | None = None) -> "Template":
        self.nodes[name] = TemplateNode(name, action, loop_over)
        if self.start is None:
            self.start = name
        return self

    def edge(self, source: str, operator: str,
             successors: list[tuple[str, int]]) -> "Template":
        if operator not in ("and", "or", "xor"):
            raise PapyrusError(f"unknown edge operator {operator!r}")
        self.edges[source] = _EdgeGroup(operator, list(successors))
        return self


class PowerFrame:
    """Template storage plus the instantiation engine and data services."""

    def __init__(self):
        self.templates: dict[str, Template] = {}
        #: workspace name -> {object name -> payload}
        self.workspaces: dict[str, dict[str, Any]] = {"group": {}}

    # -------------------------------------------------------------- templates

    def store(self, template: Template) -> Template:
        self.templates[template.name] = template
        return template

    def instantiate(
        self,
        name: str,
        context: dict[str, Any],
        chooser: Chooser | None = None,
    ) -> list[str]:
        """Run a stored template; returns the node execution order.

        ``xor`` takes the highest-priority successor, ``and`` takes all,
        ``or`` consults the chooser (all by default).
        """
        template = self.templates.get(name)
        if template is None:
            raise PapyrusError(f"no template named {name!r}")
        executed: list[str] = []
        frontier = [template.start] if template.start else []
        while frontier:
            node_name = frontier.pop(0)
            if node_name in executed:
                continue
            node = template.nodes[node_name]
            if node.loop_over is not None:
                for element in context.get(node.loop_over, ()):
                    scoped = dict(context)
                    scoped["element"] = element
                    node.action(scoped)
            else:
                node.action(context)
            executed.append(node_name)
            group = template.edges.get(node_name)
            if group is None:
                continue
            ordered = sorted(group.successors, key=lambda s: -s[1])
            names = [s for s, _ in ordered]
            if group.operator == "xor":
                frontier.extend(names[:1])
            elif group.operator == "and":
                frontier.extend(names)
            else:  # "or"
                chosen = chooser(node_name, names) if chooser else names
                frontier.extend(chosen)
        return executed

    # ---------------------------------------------------------- data services

    def private_workspace(self, user: str) -> dict[str, Any]:
        return self.workspaces.setdefault(user, {})

    def publish(self, user: str, name: str) -> None:
        """Move an object from a private workspace to the group workspace."""
        workspace = self.private_workspace(user)
        if name not in workspace:
            raise PapyrusError(f"{user} has no object {name!r}")
        self.workspaces["group"][name] = workspace[name]

    @staticmethod
    def filter(module: dict[str, Any], view: str) -> Any:
        """A filter returns a selective part of a module."""
        if view not in module:
            raise PapyrusError(f"module has no view {view!r}")
        return module[view]

    @staticmethod
    def configuration(bindings: dict[str, Any]) -> dict[str, Any]:
        """A configuration binds together components of a design entity."""
        return dict(bindings)
