"""A UNIX-make baseline: timestamp-driven rebuild over explicit rules.

The thesis positions derivation history as "what make needs, deduced
automatically"; this baseline is the thing users would otherwise write by
hand.  Rules carry an action callback; ``build`` re-runs a rule iff any
dependency is newer than the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clock import GLOBAL_CLOCK, VirtualClock
from repro.errors import PapyrusError

Action = Callable[[dict[str, Any]], Any]


@dataclass
class Rule:
    target: str
    deps: tuple[str, ...]
    action: Action
    description: str = ""


class Make:
    """Timestamped store + rules."""

    def __init__(self, clock: VirtualClock | None = None):
        self.clock = clock or GLOBAL_CLOCK
        self.rules: dict[str, Rule] = {}
        self.store: dict[str, Any] = {}
        self.mtimes: dict[str, float] = {}
        self.actions_run = 0

    def rule(self, target: str, deps: list[str], action: Action,
             description: str = "") -> Rule:
        rule = Rule(target=target, deps=tuple(deps), action=action,
                    description=description)
        self.rules[target] = rule
        return rule

    def touch(self, name: str, payload: Any) -> None:
        """Create or modify a source file."""
        self.store[name] = payload
        self.mtimes[name] = self.clock.now

    def outdated(self, target: str) -> bool:
        rule = self.rules.get(target)
        if rule is None:
            if target not in self.store:
                raise PapyrusError(f"no rule to make target {target!r}")
            return False
        if target not in self.store:
            return True
        target_time = self.mtimes.get(target, -1.0)
        return any(
            self.mtimes.get(dep, float("inf")) > target_time
            or self.outdated(dep)
            for dep in rule.deps
        )

    def build(self, target: str) -> list[str]:
        """Bring a target up to date; returns the targets rebuilt, in order."""
        rebuilt: list[str] = []

        def visit(name: str) -> None:
            rule = self.rules.get(name)
            if rule is None:
                if name not in self.store:
                    raise PapyrusError(f"no rule to make target {name!r}")
                return
            for dep in rule.deps:
                visit(dep)
            if not self.outdated(name):
                return
            self.store[name] = rule.action(self.store)
            self.clock.advance(0.001)  # rebuild gets a fresh timestamp
            self.mtimes[name] = self.clock.now
            self.actions_run += 1
            rebuilt.append(name)

        visit(target)
        return rebuilt
