"""Table I — the characteristics summary of process support systems.

Two layers:

* :data:`PAPER_TABLE` reprints the thesis's Table I verbatim (all fourteen
  systems × seven functional requirements);
* :func:`probe_matrix` *executes* capability probes against the systems this
  repository actually implements (Papyrus and the VOV / make / PowerFrame
  miniatures), so the Papyrus row — and the characteristic gaps of the
  baselines — are demonstrated by running code, not asserted.

A probe returns True only if the exercised behaviour genuinely works; every
probe runs real system code and treats exceptions as "No".
"""

from __future__ import annotations

from typing import Callable

DIMENSIONS = (
    "tool_encapsulation",
    "tool_navigation",
    "design_exploration",
    "data_evolution",
    "context_management",
    "cooperative_work",
    "distributed_architecture",
)

#: Thesis Table I, verbatim ("Some" preserved as the string "Some").
PAPER_TABLE: dict[str, tuple] = {
    "Powerframe": ("Yes", "Yes", "No", "No", "Yes", "No", "No"),
    "VOV":        ("Yes", "No", "No", "No", "No", "Yes", "Yes"),
    "Ulysses":    ("Yes", "Yes", "Yes", "No", "No", "No", "No"),
    "Cadweld":    ("Yes", "Yes", "Yes", "No", "No", "No", "No"),
    "Hercules":   ("Yes", "Yes", "No", "No", "No", "No", "No"),
    "IDE":        ("Yes", "Yes", "Some", "No", "No", "No", "Yes"),
    "MMS":        ("Yes", "Yes", "No", "Yes", "No", "No", "Yes"),
    "IDEAS":      ("Yes", "Yes", "No", "Yes", "Yes", "No", "No"),
    "Monitor":    ("Yes", "Yes", "No", "No", "No", "No", "No"),
    "Siemens":    ("Yes", "Yes", "Some", "No", "No", "No", "No"),
    "SoftBench":  ("Yes", "Yes", "Some", "No", "Yes", "No", "No"),
    "PPA":        ("Yes", "Yes", "No", "No", "No", "No", "No"),
    "POISE":      ("Yes", "Yes", "Some", "No", "No", "No", "No"),
    "Papyrus":    ("Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes"),
}


def _safe(probe: Callable[[], bool]) -> bool:
    try:
        return bool(probe())
    except Exception:
        return False


# ------------------------------------------------------------------ Papyrus


def _papyrus_env():
    from repro.cad import default_registry
    from repro.clock import VirtualClock
    from repro.core import LWTSystem
    from repro.sprite import Cluster
    from repro.taskmgr import TaskManager
    from repro.workloads import seed_designs, standard_library

    clock = VirtualClock()
    lwt = LWTSystem(clock=clock)
    seed = seed_designs(lwt.db)
    taskmgr = TaskManager(
        lwt.db, default_registry(), standard_library(),
        cluster=Cluster.homogeneous(3, clock=clock), clock=clock,
    )
    return lwt, taskmgr, seed


def probe_papyrus() -> dict[str, bool]:
    from repro.activity import ActivityManager

    lwt, taskmgr, seed = _papyrus_env()
    thread = lwt.create_thread("probe")
    manager = ActivityManager(thread, taskmgr)

    results: dict[str, bool] = {}

    def encapsulation() -> bool:
        # one high-level invocation, no tool options supplied by the user
        manager.invoke("Padp", {"Incell": "adder.net"}, {"Outcell": "p.pad"})
        return lwt.db.exists("p.pad")

    def navigation() -> bool:
        # a multi-tool goal: the system sequences five tools + a subtask
        point = manager.invoke(
            "Structure_Synthesis",
            {"Incell": "adder.spec", "Musa_Command": "musa.cmd"},
            {"Outcell": "n.lay", "Cell_Statistics": "n.st"},
        )
        return len(thread.stream.record(point).steps) >= 5

    def exploration() -> bool:
        anchor = thread.current_cursor
        manager.invoke("Padp", {"Incell": "n.lay"}, {"Outcell": "e.a"})
        manager.move_cursor(anchor)
        manager.invoke("Padp", {"Incell": "n.lay"}, {"Outcell": "e.b"})
        # branches isolated; both alternatives retrievable
        return thread.is_visible("e.b") and not thread.is_visible("e.a")

    def evolution() -> bool:
        # operation history down to steps, tied to object versions
        for record in thread.stream.records():
            for step in record.steps:
                if any("@" not in n for n in step.outputs):
                    return False
        return any(r.steps for r in thread.stream.records())

    def context() -> bool:
        # the data scope clusters exactly this entity's data+operations
        return len(manager.show_data_scope()) > 0

    def cooperative() -> bool:
        other = lwt.create_thread("colleague")
        sds = lwt.create_sds("probe-sds", [thread, other])
        sds.contribute(thread, "n.lay")
        sds.retrieve(other, "n.lay")
        new_version = lwt.db.put("n.lay", lwt.db.get("n.lay").payload)
        thread.extra_objects.add(str(new_version.name))
        sds.contribute(thread, str(new_version.name))
        return len(other.notifications) >= 1

    def distributed() -> bool:
        hosts = set()
        for record in thread.stream.records():
            hosts.update(s.host for s in record.steps)
        return len(hosts) > 1

    results["tool_encapsulation"] = _safe(encapsulation)
    results["tool_navigation"] = _safe(navigation)
    results["design_exploration"] = _safe(exploration)
    results["data_evolution"] = _safe(evolution)
    results["context_management"] = _safe(context)
    results["cooperative_work"] = _safe(cooperative)
    results["distributed_architecture"] = _safe(distributed)
    return results


# ---------------------------------------------------------------- baselines


def probe_vov() -> dict[str, bool]:
    from repro.baselines.vov import Trace, VovManager

    vov = VovManager()
    vov.write("src", 1)
    vov.record(Trace("double", (), ("src",), ("out",)), {"out": 2})
    vov.record(Trace("inc", (), ("out",), ("final",)), {"final": 3})

    def runner(trace, store):
        if trace.tool == "double":
            return {"out": store["src"] * 2}
        return {"final": store["out"] + 1}

    def encapsulation() -> bool:
        # retracing re-runs tools with no user-supplied detail
        vov.retrace("src", 5, runner)
        return vov.store["final"] == 11

    def evolution() -> bool:
        # in-place updates: the previous value is gone -> no evolution record
        return False if vov.store["out"] == 10 else True

    def cooperative() -> bool:
        # one shared store, overwrite-guarded in real VOV: sharing works
        return "final" in vov.store

    return {
        "tool_encapsulation": _safe(encapsulation),
        "tool_navigation": False,          # no goal-directed sequencing API
        "design_exploration": False,       # no rollback: in-place store
        "data_evolution": _safe(evolution),
        "context_management": False,       # flat trace database
        "cooperative_work": _safe(cooperative),
        "distributed_architecture": False,  # (real VOV: Yes; mini omits it)
    }


def probe_make() -> dict[str, bool]:
    from repro.baselines.makefile import Make
    from repro.clock import VirtualClock

    make = Make(clock=VirtualClock())
    make.touch("a", 1)
    make.rule("b", ["a"], lambda s: s["a"] + 1)
    make.rule("c", ["b"], lambda s: s["b"] * 2)

    def encapsulation() -> bool:
        make.build("c")
        return make.store["c"] == 4

    def navigation() -> bool:
        # dependency-ordered multi-step builds toward a stated goal
        make.clock.advance(1)
        make.touch("a", 10)
        return make.build("c") == ["b", "c"]

    return {
        "tool_encapsulation": _safe(encapsulation),
        "tool_navigation": _safe(navigation),
        "design_exploration": False,
        "data_evolution": False,           # timestamps, not history
        "context_management": False,
        "cooperative_work": False,
        "distributed_architecture": False,
    }


def probe_powerframe() -> dict[str, bool]:
    from repro.baselines.powerframe import PowerFrame, Template

    frame = PowerFrame()
    log: list[str] = []
    template = Template("flow")
    template.node("P12", lambda ctx: log.append("P12"))
    template.node("P13", lambda ctx: log.append("P13"))
    template.node("P14", lambda ctx: log.append("P14"))
    template.edge("P12", "xor", [("P13", 2), ("P14", 1)])
    frame.store(template)

    def encapsulation() -> bool:
        frame.instantiate("flow", {})
        return log == ["P12", "P13"]       # xor picked the priority branch

    def navigation() -> bool:
        return "P13" in log                # the template led the way

    def context() -> bool:
        ws = frame.private_workspace("randy")
        ws["cell"] = 1
        frame.publish("randy", "cell")
        return frame.workspaces["group"]["cell"] == 1

    return {
        "tool_encapsulation": _safe(encapsulation),
        "tool_navigation": _safe(navigation),
        "design_exploration": False,
        "data_evolution": False,           # versions not tied to operations
        "context_management": _safe(context),
        "cooperative_work": False,         # no change notification
        "distributed_architecture": False,
    }


def probe_ulysses() -> dict[str, bool]:
    from repro.baselines.ulysses import standard_flow
    from repro.cad.logic import BehavioralSpec

    board = standard_flow()
    board.post("spec", BehavioralSpec("a", "adder", 3))

    def encapsulation() -> bool:
        # knowledge sources hide tool invocation details behind facts
        board.run("report")
        return "layout" in board.facts

    def navigation() -> bool:
        # the blackboard sequenced four tools toward the posted goal
        return board.firings == ["compile-ks", "optimize-ks", "layout-ks",
                                 "stats-ks"]

    return {
        "tool_encapsulation": _safe(encapsulation),
        "tool_navigation": _safe(navigation),
        # (real Ulysses claims AI-driven exploration: Yes in Table I; the
        # miniature omits its rule-based backtracking, so: No)
        "design_exploration": False,
        "data_evolution": False,        # facts overwrite in place
        "context_management": False,    # one flat blackboard
        "cooperative_work": False,
        "distributed_architecture": False,
    }


def probe_matrix() -> dict[str, dict[str, bool]]:
    """Run every capability probe; returns system → dimension → bool."""
    return {
        "Papyrus": probe_papyrus(),
        "VOV (mini)": probe_vov(),
        "make (mini)": probe_make(),
        "Powerframe (mini)": probe_powerframe(),
        "Ulysses (mini)": probe_ulysses(),
    }


def render_matrix(probed: dict[str, dict[str, bool]] | None = None) -> str:
    """Render the probed matrix over the paper's Table I for comparison."""
    probed = probed if probed is not None else probe_matrix()
    headers = ["System"] + [d.replace("_", " ").title() for d in DIMENSIONS]
    widths = [max(22, len(headers[0]))] + [
        max(len(h), 4) for h in headers[1:]
    ]

    def row(name: str, cells) -> str:
        parts = [name.ljust(widths[0])]
        for value, width in zip(cells, widths[1:]):
            text = value if isinstance(value, str) else \
                ("Yes" if value else "No")
            parts.append(text.center(width))
        return " | ".join(parts)

    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = ["Table I — paper (all systems):", header_line,
             "-" * len(header_line)]
    for name, cells in PAPER_TABLE.items():
        lines.append(row(name, cells))
    lines.append("")
    lines.append("Executed capability probes (this repository):")
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for name, cells in probed.items():
        lines.append(row(name, [cells[d] for d in DIMENSIONS]))
    return "\n".join(lines)
