"""A Ulysses miniature (§2.2.3): blackboard-based tool execution control.

Ulysses models CAD tools (and designers) as *knowledge sources* with
precondition patterns, conflict-resolution parameters and an execution
method.  Facts (files/goals) live on a global blackboard; a scheduler picks
among activated knowledge sources by priority.  The thesis's critique — the
designer is "just another knowledge source", no history, no data/process
coupling — is what the comparison benches lean on; this miniature is big
enough to show both the mechanism and the gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PapyrusError

#: An execution method: given the blackboard facts, returns new facts.
Method = Callable[[dict[str, Any]], dict[str, Any]]


@dataclass(frozen=True)
class KnowledgeSource:
    """One knowledge source: preconditions, conflict parameters, a method."""

    name: str
    preconditions: tuple[str, ...]      # fact names that must be present
    produces: tuple[str, ...]           # fact names the method asserts
    method: Method
    priority: int = 0                   # conflict-resolution parameter
    computing_effort: int = 50          # informational (as in Cadweld frames)

    def activated(self, facts: dict[str, Any]) -> bool:
        return all(p in facts for p in self.preconditions) and \
            not all(p in facts for p in self.produces)


class Blackboard:
    """The global fact store plus the match-select-fire inference loop."""

    def __init__(self):
        self.facts: dict[str, Any] = {}
        self.sources: list[KnowledgeSource] = []
        self.firings: list[str] = []

    def register(self, source: KnowledgeSource) -> KnowledgeSource:
        self.sources.append(source)
        return source

    def post(self, fact: str, value: Any = True) -> None:
        """Post a fact (a design goal or a produced file)."""
        self.facts[fact] = value

    def _scheduler(self, candidates: list[KnowledgeSource]) -> KnowledgeSource:
        """The special scheduler KS: rank volunteers, fire the best."""
        return max(candidates, key=lambda s: (s.priority, -s.computing_effort,
                                              s.name))

    def step(self) -> str | None:
        """One match-select-fire cycle; returns the fired KS name or None."""
        candidates = [s for s in self.sources if s.activated(self.facts)]
        if not candidates:
            return None
        chosen = self._scheduler(candidates)
        new_facts = chosen.method(dict(self.facts))
        for name, value in new_facts.items():
            self.facts[name] = value
        for name in chosen.produces:
            self.facts.setdefault(name, True)
        self.firings.append(chosen.name)
        return chosen.name

    def run(self, goal: str, max_cycles: int = 100) -> list[str]:
        """Fire until the goal fact appears (or nothing can fire)."""
        cycles = 0
        while goal not in self.facts:
            if cycles >= max_cycles:
                raise PapyrusError(
                    f"blackboard did not reach goal {goal!r} in "
                    f"{max_cycles} cycles"
                )
            if self.step() is None:
                raise PapyrusError(
                    f"no knowledge source can advance toward {goal!r}"
                )
            cycles += 1
        return list(self.firings)


def standard_flow() -> Blackboard:
    """The synthesis flow as Ulysses would express it: one KS per tool.

    Demonstrates the open-integration claim (add/remove a KS without
    touching the others) and, by omission, everything Table I says Ulysses
    lacks: history, versions, context, cooperation.
    """
    from repro.cad import default_registry
    from repro.cad.registry import ToolCall

    registry = default_registry()

    def run_tool(tool: str, in_fact: str, out_fact: str):
        def method(facts: dict[str, Any]) -> dict[str, Any]:
            call = ToolCall(tool, inputs=(facts[in_fact],),
                            output_names=("out",))
            result = registry.run(call)
            if not result.ok:
                raise PapyrusError(result.log)
            return {out_fact: result.outputs["out"]}
        return method

    board = Blackboard()
    board.register(KnowledgeSource(
        "compile-ks", ("spec",), ("netlist",),
        run_tool("bdsyn", "spec", "netlist"), priority=5))
    board.register(KnowledgeSource(
        "optimize-ks", ("netlist",), ("logic",),
        run_tool("misII", "netlist", "logic"), priority=4))
    board.register(KnowledgeSource(
        "layout-ks", ("logic",), ("layout",),
        run_tool("wolfe", "logic", "layout"), priority=3))
    board.register(KnowledgeSource(
        "stats-ks", ("layout",), ("report",),
        run_tool("chipstats", "layout", "report"), priority=2))
    return board
