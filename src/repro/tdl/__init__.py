"""The Task Description Language (TDL).

TDL is "Tcl plus five commands" (thesis Ch. 4).  This package contains a
from-scratch interpreter for the Tcl subset the thesis relies on — everything
is a string; words are built by brace/quote grouping with variable and
command substitution; ``expr`` evaluates C-like expressions; control
constructs (``if``, ``while``, ``for``, ``foreach``, ``proc``) are ordinary
commands — plus the TDL template model (``task`` / ``step`` / ``subtask`` /
``abort`` / ``attribute``).

The five TDL commands themselves are *registered by the task manager*, which
closes them over a running task execution; this module only provides their
argument parsing and the static template representation.
"""

from repro.tdl.interp import Interp
from repro.tdl.template import StepSpec, TaskTemplate, TemplateLibrary

__all__ = ["Interp", "StepSpec", "TaskTemplate", "TemplateLibrary"]
