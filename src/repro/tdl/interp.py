"""The Tcl-subset interpreter.

Everything is a string.  The interpreter keeps a frame stack for ``proc``
locals, a command table that extension layers (TDL, the task manager) add to
— the "dynamic binding" that made Tcl attractive to the thesis — and
optional *read traces*: callbacks fired when a named variable is about to be
substituted.  The task manager uses a read trace on ``status`` to synchronize
with the most recently issued design step before its exit code is inspected.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TdlBreak, TdlContinue, TdlError, TdlReturn
from repro.tdl.tokenizer import (
    BARE,
    BRACED,
    QUOTED,
    find_substitutions,
    split_words,
    strip_comments_and_split,
    unescape,
)

Command = Callable[["Interp", list[str]], str]
TopHook = Callable[[int, str], None]


class _Frame:
    __slots__ = ("vars", "linked")

    def __init__(self):
        self.vars: dict[str, str] = {}
        self.linked: set[str] = set()


class Interp:
    """One interpreter instance (one task manager runs one of these)."""

    #: Guard against runaway scripts in tests and benchmarks.
    MAX_COMMANDS = 2_000_000

    def __init__(self):
        self._globals = _Frame()
        self._frames: list[_Frame] = [self._globals]
        self.commands: dict[str, Command] = {}
        self.procs: dict[str, tuple[list[tuple[str, str | None]], str]] = {}
        self.read_traces: dict[str, Callable[["Interp"], None]] = {}
        self.stdout: list[str] = []
        self._executed = 0
        from repro.tdl import builtins as _builtins

        _builtins.install(self)

    # -------------------------------------------------------------- variables

    @property
    def frame(self) -> _Frame:
        return self._frames[-1]

    def get_var(self, name: str) -> str:
        trace = self.read_traces.get(name)
        if trace is not None:
            trace(self)
        frame = self.frame
        if name in frame.linked:
            frame = self._globals
        if name not in frame.vars:
            raise TdlError(f'can\'t read "{name}": no such variable')
        return frame.vars[name]

    def set_var(self, name: str, value: str) -> str:
        frame = self.frame
        if name in frame.linked:
            frame = self._globals
        frame.vars[name] = value
        return value

    def unset_var(self, name: str) -> None:
        frame = self.frame
        if name in frame.linked:
            frame = self._globals
        frame.vars.pop(name, None)

    def has_var(self, name: str) -> bool:
        frame = self.frame
        if name in frame.linked:
            frame = self._globals
        return name in frame.vars

    def link_global(self, name: str) -> None:
        if self.frame is not self._globals:
            self.frame.linked.add(name)

    def reset_variables(self) -> None:
        """Drop all variables (used on restart-from-scratch)."""
        self._globals.vars.clear()
        self._frames = [self._globals]

    # ------------------------------------------------------------ commands

    def register(self, name: str, func: Command) -> None:
        self.commands[name] = func

    # ---------------------------------------------------------- substitution

    def substitute(self, text: str) -> str:
        """Perform ``$var`` and ``[command]`` substitution plus escapes."""
        spans = find_substitutions(text)
        if not spans:
            return unescape(text)
        out: list[str] = []
        pos = 0
        for start, end, kind, payload in spans:
            out.append(unescape(text[pos:start]))
            if kind == "var":
                out.append(self.get_var(payload))
            else:
                out.append(self.eval(payload))
            pos = end
        out.append(unescape(text[pos:]))
        return "".join(out)

    def _expand_word(self, kind: str, text: str) -> str:
        if kind == BRACED:
            return text
        return self.substitute(text)

    # ------------------------------------------------------------- evaluation

    def eval(self, script: str, top_hook: TopHook | None = None) -> str:
        """Evaluate a script; the result is the last command's result.

        ``top_hook(index, raw)`` is called before each command of *this*
        script — the task manager uses it to track top-level command IDs for
        programmable aborts (§4.3.4).  Nested evaluations (control-structure
        bodies, ``[...]``) don't pass a hook, so commands inside them share
        the enclosing top-level command's ID, exactly as the thesis specifies.
        """
        result = ""
        for index, raw in enumerate(strip_comments_and_split(script)):
            if top_hook is not None:
                top_hook(index, raw)
            result = self.eval_command(raw)
        return result

    def eval_command(self, raw: str) -> str:
        self._executed += 1
        if self._executed > self.MAX_COMMANDS:
            raise TdlError("command budget exceeded (runaway script?)")
        words = [self._expand_word(kind, text) for kind, text in split_words(raw)]
        if not words:
            return ""
        name, args = words[0], words[1:]
        if name in self.procs:
            return self._call_proc(name, args)
        func = self.commands.get(name)
        if func is None:
            raise TdlError(f'invalid command name "{name}"')
        return func(self, args)

    # ------------------------------------------------------------------ procs

    def define_proc(self, name: str, params: list[tuple[str, str | None]],
                    body: str) -> None:
        self.procs[name] = (params, body)

    def _call_proc(self, name: str, args: list[str]) -> str:
        params, body = self.procs[name]
        frame = _Frame()
        consumed = 0
        for i, (pname, default) in enumerate(params):
            if pname == "args" and i == len(params) - 1:
                from repro.tdl.lists import format_list

                frame.vars["args"] = format_list(args[consumed:])
                consumed = len(args)
                break
            if consumed < len(args):
                frame.vars[pname] = args[consumed]
                consumed += 1
            elif default is not None:
                frame.vars[pname] = default
            else:
                raise TdlError(
                    f'wrong # args: should be "{name} '
                    + " ".join(p for p, _ in params) + '"'
                )
        if consumed < len(args):
            raise TdlError(f'wrong # args for proc "{name}"')
        self._frames.append(frame)
        try:
            return self.eval(body)
        except TdlReturn as ret:
            return ret.value
        finally:
            self._frames.pop()

    # --------------------------------------------------------------- helpers

    def expr(self, text: str):
        """Substitute then evaluate an expression (the ``expr`` semantics)."""
        from repro.tdl import expr as _expr

        return _expr.evaluate(self.substitute(text))

    def condition(self, text: str) -> bool:
        from repro.tdl import expr as _expr

        return _expr.truthy(self.expr(text))
