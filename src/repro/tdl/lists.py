"""Tcl list handling.

A Tcl list is a string whose elements are separated by white space, with
braces grouping elements that themselves contain white space.
"""

from __future__ import annotations

from repro.errors import TdlError
from repro.tdl.tokenizer import BARE, BRACED, QUOTED, split_words, unescape


def parse_list(text: str) -> list[str]:
    """Split a Tcl list string into its elements (no substitution)."""
    elements: list[str] = []
    # Newlines are element separators inside lists.
    for kind, word in split_words(text.replace("\n", " ")):
        if kind == BRACED:
            elements.append(word)
        else:
            elements.append(unescape(word))
    return elements


def _braces_balanced(text: str) -> bool:
    depth = 0
    for ch in text:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


def format_element(element: str) -> str:
    """Quote one element so that parse_list round-trips it."""
    if element == "":
        return "{}"
    specials = " \t\n;\"$[]{}\\"
    if not any(ch in element for ch in specials):
        return element
    if _braces_balanced(element) and not element.endswith("\\"):
        return "{" + element + "}"
    # Unbalanced braces (or trailing backslash): escape every special.
    out = []
    for ch in element:
        if ch in specials:
            out.append("\\" + ("n" if ch == "\n" else "t" if ch == "\t" else ch))
        else:
            out.append(ch)
    return "".join(out)


def format_list(elements: list[str]) -> str:
    """Join elements into a Tcl list string."""
    return " ".join(format_element(e) for e in elements)


def list_index(text: str, index: int) -> str:
    elements = parse_list(text)
    if not 0 <= index < len(elements):
        raise TdlError(f"list index {index} out of range")
    return elements[index]
