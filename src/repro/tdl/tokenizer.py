"""Tcl-style script tokenization.

Faithful to the small core of Tcl the thesis uses:

* commands are separated by newlines or semicolons (outside any grouping);
* ``{...}`` groups a word literally (no substitution), nestable;
* ``"..."`` groups a word with substitution;
* ``[...]`` is command substitution, ``$name``/``${name}`` variable
  substitution (performed later, by the interpreter — the tokenizer only
  finds word boundaries);
* ``#`` at a command position starts a comment;
* ``\\`` escapes the next character; a backslash-newline joins lines.
"""

from __future__ import annotations

from repro.errors import TdlError


def strip_comments_and_split(script: str) -> list[str]:
    """Split a script into command strings.

    Returns the raw text of each command (with grouping intact), skipping
    blank commands and ``#`` comments.
    """
    commands: list[str] = []
    buf: list[str] = []
    depth_brace = 0
    depth_bracket = 0
    in_quote = False
    i = 0
    n = len(script)
    at_command_start = True
    in_comment = False
    while i < n:
        ch = script[i]
        if in_comment:
            if ch == "\n":
                in_comment = False
                at_command_start = True
            i += 1
            continue
        if ch == "\\" and i + 1 < n:
            buf.append(script[i:i + 2])
            at_command_start = False
            i += 2
            continue
        if not in_quote:
            if ch == "{":
                depth_brace += 1
            elif ch == "}":
                depth_brace -= 1
                if depth_brace < 0:
                    raise TdlError("unbalanced '}'")
            elif ch == "[" and depth_brace == 0:
                depth_bracket += 1
            elif ch == "]" and depth_brace == 0:
                depth_bracket = max(0, depth_bracket - 1)
            elif ch == '"' and depth_brace == 0:
                in_quote = True
        elif ch == '"':
            in_quote = False
        top = depth_brace == 0 and depth_bracket == 0 and not in_quote
        if top and ch in "\n;":
            text = "".join(buf).strip()
            if text:
                commands.append(text)
            buf = []
            at_command_start = True
            i += 1
            continue
        if top and at_command_start and ch == "#":
            in_comment = True
            i += 1
            continue
        if at_command_start and ch in " \t":
            i += 1
            continue
        buf.append(ch)
        if ch not in " \t":
            at_command_start = False
        i += 1
    if depth_brace != 0:
        raise TdlError("unbalanced '{'")
    if in_quote:
        raise TdlError("unterminated quote")
    text = "".join(buf).strip()
    if text:
        commands.append(text)
    return commands


#: Word kinds produced by :func:`split_words`.
BARE, BRACED, QUOTED = "bare", "braced", "quoted"

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"',
            "$": "$", "[": "[", "]": "]", "{": "{", "}": "}", ";": ";",
            " ": " ", "\n": " "}


def unescape(text: str) -> str:
    """Resolve backslash escapes in bare/quoted word text."""
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append(_ESCAPES.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def split_words(command: str) -> list[tuple[str, str]]:
    """Split one command into ``(kind, text)`` words.

    ``braced`` text has the outer braces removed and is substitution-free;
    ``quoted`` has the quotes removed; ``bare`` is as written.  Substitution
    of ``$`` and ``[...]`` inside bare/quoted words is the interpreter's job.
    """
    words: list[tuple[str, str]] = []
    i = 0
    n = len(command)
    while i < n:
        while i < n and command[i] in " \t":
            i += 1
        if i >= n:
            break
        ch = command[i]
        if ch == "{":
            depth = 1
            j = i + 1
            while j < n and depth:
                if command[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if command[j] == "{":
                    depth += 1
                elif command[j] == "}":
                    depth -= 1
                j += 1
            if depth:
                raise TdlError(f"unbalanced braces in {command!r}")
            words.append((BRACED, command[i + 1:j - 1]))
            i = j
        elif ch == '"':
            j = i + 1
            while j < n:
                if command[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if command[j] == '"':
                    break
                if command[j] == "[":
                    j = _skip_bracket(command, j)
                    continue
                j += 1
            if j >= n:
                raise TdlError(f"unterminated quote in {command!r}")
            words.append((QUOTED, command[i + 1:j]))
            i = j + 1
        else:
            j = i
            while j < n and command[j] not in " \t":
                if command[j] == "\\" and j + 1 < n:
                    j += 2
                    continue
                if command[j] == "[":
                    j = _skip_bracket(command, j)
                    continue
                j += 1
            words.append((BARE, command[i:j]))
            i = j
    return words


def _skip_bracket(text: str, start: int) -> int:
    """Index just past the ``]`` matching the ``[`` at ``start``."""
    depth = 0
    i = start
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            i += 2
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    raise TdlError(f"unbalanced brackets in {text!r}")


def find_substitutions(text: str) -> list[tuple[int, int, str, str]]:
    """Locate ``$var``, ``${var}`` and ``[script]`` spans in a word.

    Returns ``(start, end, kind, payload)`` with kind ``var`` or ``cmd``.
    """
    spans: list[tuple[int, int, str, str]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == "[":
            end = _skip_bracket(text, i)
            spans.append((i, end, "cmd", text[i + 1:end - 1]))
            i = end
            continue
        if ch == "$" and i + 1 < n:
            if text[i + 1] == "{":
                close = text.find("}", i + 2)
                if close < 0:
                    raise TdlError(f"unterminated ${{ in {text!r}")
                spans.append((i, close + 1, "var", text[i + 2:close]))
                i = close + 1
                continue
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            if j > i + 1:
                spans.append((i, j, "var", text[i + 1:j]))
                i = j
                continue
        i += 1
    return spans
