"""Standard Tcl commands (the subset TDL and the thesis examples rely on)."""

from __future__ import annotations

from repro.errors import TdlBreak, TdlContinue, TdlError, TdlReturn
from repro.tdl import expr as _expr
from repro.tdl.lists import format_list, parse_list


def _arity(name: str, args: list[str], minimum: int, maximum: int | None = None):
    if len(args) < minimum or (maximum is not None and len(args) > maximum):
        raise TdlError(f'wrong # args for "{name}"')


# ---------------------------------------------------------------- variables


def _cmd_set(interp, args):
    _arity("set", args, 1, 2)
    if len(args) == 1:
        return interp.get_var(args[0])
    return interp.set_var(args[0], args[1])


def _cmd_unset(interp, args):
    _arity("unset", args, 1)
    for name in args:
        interp.unset_var(name)
    return ""


def _cmd_incr(interp, args):
    _arity("incr", args, 1, 2)
    amount = int(args[1]) if len(args) == 2 else 1
    current = int(interp.get_var(args[0])) if interp.has_var(args[0]) else 0
    return interp.set_var(args[0], str(current + amount))


def _cmd_append(interp, args):
    _arity("append", args, 1)
    current = interp.get_var(args[0]) if interp.has_var(args[0]) else ""
    return interp.set_var(args[0], current + "".join(args[1:]))


def _cmd_global(interp, args):
    for name in args:
        interp.link_global(name)
    return ""


# -------------------------------------------------------------- expressions


def _cmd_expr(interp, args):
    _arity("expr", args, 1)
    # Tcl concatenates multiple args with spaces before evaluating.
    value = _expr.evaluate(" ".join(args))
    return _expr.format_result(value)


# ------------------------------------------------------------- control flow


def _cmd_if(interp, args):
    _arity("if", args, 2)
    i = 0
    while i < len(args):
        cond = args[i]
        i += 1
        if i < len(args) and args[i] == "then":
            i += 1
        if i >= len(args):
            raise TdlError("if: missing body")
        body = args[i]
        i += 1
        if _expr.truthy(_expr.evaluate(interp.substitute(cond))):
            return interp.eval(body)
        if i < len(args) and args[i] == "elseif":
            i += 1
            continue
        if i < len(args) and args[i] == "else":
            i += 1
            if i >= len(args):
                raise TdlError("if: missing else body")
            return interp.eval(args[i])
        if i < len(args) and i == len(args) - 1:
            # old-style implicit else: if cond body elsebody
            return interp.eval(args[i])
        return ""
    return ""


def _cmd_while(interp, args):
    _arity("while", args, 2, 2)
    cond, body = args
    result = ""
    while interp.condition(cond):
        try:
            result = interp.eval(body)
        except TdlBreak:
            break
        except TdlContinue:
            continue
    return ""


def _cmd_for(interp, args):
    _arity("for", args, 4, 4)
    init, cond, nxt, body = args
    interp.eval(init)
    while interp.condition(cond):
        try:
            interp.eval(body)
        except TdlBreak:
            break
        except TdlContinue:
            pass
        interp.eval(nxt)
    return ""


def _cmd_foreach(interp, args):
    _arity("foreach", args, 3, 3)
    var, list_text, body = args
    for element in parse_list(list_text):
        interp.set_var(var, element)
        try:
            interp.eval(body)
        except TdlBreak:
            break
        except TdlContinue:
            continue
    return ""


def _cmd_break(interp, args):
    raise TdlBreak()


def _cmd_continue(interp, args):
    raise TdlContinue()


def _cmd_return(interp, args):
    raise TdlReturn(args[0] if args else "")


def _cmd_proc(interp, args):
    _arity("proc", args, 3, 3)
    name, params_text, body = args
    params: list[tuple[str, str | None]] = []
    for element in parse_list(params_text):
        parts = parse_list(element)
        if len(parts) == 2:
            params.append((parts[0], parts[1]))
        else:
            params.append((element, None))
    interp.define_proc(name, params, body)
    return ""


def _cmd_eval(interp, args):
    _arity("eval", args, 1)
    return interp.eval(" ".join(args))


def _cmd_catch(interp, args):
    _arity("catch", args, 1, 2)
    try:
        result = interp.eval(args[0])
    except (TdlBreak, TdlContinue, TdlReturn):
        raise
    except Exception as exc:  # Tcl catch traps everything
        if len(args) == 2:
            interp.set_var(args[1], str(exc))
        return "1"
    if len(args) == 2:
        interp.set_var(args[1], result)
    return "0"


# -------------------------------------------------------------------- lists


def _cmd_list(interp, args):
    return format_list(args)


def _cmd_lindex(interp, args):
    _arity("lindex", args, 2, 2)
    elements = parse_list(args[0])
    index = int(args[1])
    if not 0 <= index < len(elements):
        return ""
    return elements[index]


def _cmd_llength(interp, args):
    _arity("llength", args, 1, 1)
    return str(len(parse_list(args[0])))


def _cmd_lappend(interp, args):
    _arity("lappend", args, 1)
    current = interp.get_var(args[0]) if interp.has_var(args[0]) else ""
    elements = parse_list(current)
    elements.extend(args[1:])
    return interp.set_var(args[0], format_list(elements))


def _cmd_lrange(interp, args):
    _arity("lrange", args, 3, 3)
    elements = parse_list(args[0])
    first = int(args[1])
    last = len(elements) - 1 if args[2] == "end" else int(args[2])
    return format_list(elements[first:last + 1])


def _cmd_concat(interp, args):
    combined: list[str] = []
    for arg in args:
        combined.extend(parse_list(arg))
    return format_list(combined)


def _cmd_join(interp, args):
    _arity("join", args, 1, 2)
    sep = args[1] if len(args) == 2 else " "
    return sep.join(parse_list(args[0]))


def _cmd_split(interp, args):
    _arity("split", args, 1, 2)
    seps = args[1] if len(args) == 2 else " \t\n"
    parts: list[str] = [""]
    for ch in args[0]:
        if ch in seps:
            parts.append("")
        else:
            parts[-1] += ch
    return format_list(parts)


# ------------------------------------------------------------------ strings


def _cmd_string(interp, args):
    _arity("string", args, 2)
    op = args[0]
    if op == "length":
        return str(len(args[1]))
    if op == "tolower":
        return args[1].lower()
    if op == "toupper":
        return args[1].upper()
    if op == "index":
        _arity("string index", args, 3, 3)
        idx = int(args[2])
        return args[1][idx] if 0 <= idx < len(args[1]) else ""
    if op == "range":
        _arity("string range", args, 4, 4)
        first = int(args[2])
        last = len(args[1]) - 1 if args[3] == "end" else int(args[3])
        return args[1][first:last + 1]
    if op == "compare":
        _arity("string compare", args, 3, 3)
        a, b = args[1], args[2]
        return str((a > b) - (a < b))
    if op == "match":
        _arity("string match", args, 3, 3)
        import fnmatch

        return "1" if fnmatch.fnmatchcase(args[2], args[1]) else "0"
    if op == "first":
        _arity("string first", args, 3, 3)
        return str(args[2].find(args[1]))
    raise TdlError(f'bad string operation "{op}"')


def _cmd_format(interp, args):
    _arity("format", args, 1)
    spec = args[0]
    values = []
    for value in args[1:]:
        try:
            values.append(int(value))
        except ValueError:
            try:
                values.append(float(value))
            except ValueError:
                values.append(value)
    try:
        return spec % tuple(values)
    except (TypeError, ValueError) as exc:
        raise TdlError(f"format: {exc}") from None


def _cmd_puts(interp, args):
    _arity("puts", args, 1, 2)
    text = args[-1]
    interp.stdout.append(text)
    return ""


def _cmd_info(interp, args):
    _arity("info", args, 1)
    op = args[0]
    if op == "exists":
        _arity("info exists", args, 2, 2)
        return "1" if interp.has_var(args[1]) else "0"
    if op == "commands":
        names = sorted(set(interp.commands) | set(interp.procs))
        return format_list(names)
    if op == "procs":
        return format_list(sorted(interp.procs))
    raise TdlError(f'bad info operation "{op}"')


def install(interp) -> None:
    for name, func in {
        "set": _cmd_set,
        "unset": _cmd_unset,
        "incr": _cmd_incr,
        "append": _cmd_append,
        "global": _cmd_global,
        "expr": _cmd_expr,
        "if": _cmd_if,
        "while": _cmd_while,
        "for": _cmd_for,
        "foreach": _cmd_foreach,
        "break": _cmd_break,
        "continue": _cmd_continue,
        "return": _cmd_return,
        "proc": _cmd_proc,
        "eval": _cmd_eval,
        "catch": _cmd_catch,
        "list": _cmd_list,
        "lindex": _cmd_lindex,
        "llength": _cmd_llength,
        "lappend": _cmd_lappend,
        "lrange": _cmd_lrange,
        "concat": _cmd_concat,
        "join": _cmd_join,
        "split": _cmd_split,
        "string": _cmd_string,
        "format": _cmd_format,
        "puts": _cmd_puts,
        "info": _cmd_info,
    }.items():
        interp.register(name, func)
    install_extras(interp)


# ------------------------------------------------------------ list extras


def _cmd_lsort(interp, args):
    _arity("lsort", args, 1, 2)
    numeric = len(args) == 2 and args[0] == "-integer"
    elements = parse_list(args[-1])
    if numeric:
        try:
            elements.sort(key=int)
        except ValueError:
            raise TdlError("lsort -integer: non-integer element") from None
    else:
        elements.sort()
    return format_list(elements)


def _cmd_lsearch(interp, args):
    _arity("lsearch", args, 2, 2)
    elements = parse_list(args[0])
    try:
        return str(elements.index(args[1]))
    except ValueError:
        return "-1"


def _cmd_linsert(interp, args):
    _arity("linsert", args, 3)
    elements = parse_list(args[0])
    index = len(elements) if args[1] == "end" else int(args[1])
    for offset, element in enumerate(args[2:]):
        elements.insert(index + offset, element)
    return format_list(elements)


def _cmd_lreplace(interp, args):
    _arity("lreplace", args, 3)
    elements = parse_list(args[0])
    first = int(args[1])
    last = len(elements) - 1 if args[2] == "end" else int(args[2])
    elements[first:last + 1] = list(args[3:])
    return format_list(elements)


def _cmd_lreverse(interp, args):
    _arity("lreverse", args, 1, 1)
    return format_list(list(reversed(parse_list(args[0]))))


def install_extras(interp) -> None:
    for name, func in {
        "lsort": _cmd_lsort,
        "lsearch": _cmd_lsearch,
        "linsert": _cmd_linsert,
        "lreplace": _cmd_lreplace,
        "lreverse": _cmd_lreverse,
    }.items():
        interp.register(name, func)
