"""Static task-template representation.

A task template is an ASCII TDL file (thesis §4.2): its first command is the
``task`` header; the remaining commands are the body, interpreted dynamically
by the task manager.  This module parses headers, holds template sources in a
library (templates are plain files — no database round-trip, one of the
thesis's stated design points), and parses ``step``/``subtask`` argument
lists into :class:`StepSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TemplateError
from repro.tdl.lists import parse_list
from repro.tdl.tokenizer import (
    BARE,
    BRACED,
    split_words,
    strip_comments_and_split,
)


@dataclass(frozen=True)
class TaskTemplate:
    """A parsed task template."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    body_commands: tuple[str, ...]
    source: str

    @property
    def formals(self) -> tuple[str, ...]:
        return self.inputs + self.outputs


def parse_template(source: str) -> TaskTemplate:
    """Parse TDL source into a template (header + body commands)."""
    commands = strip_comments_and_split(source)
    if not commands:
        raise TemplateError("empty task template")
    words = split_words(commands[0])
    texts = [text for _, text in words]
    if not texts or texts[0] != "task":
        raise TemplateError(
            "a task template must begin with a 'task' command, got "
            f"{texts[:1] or ['<nothing>']}"
        )
    if len(texts) != 4:
        raise TemplateError(
            f"task header needs: task Name {{inputs}} {{outputs}}; "
            f"got {len(texts) - 1} arguments"
        )
    name = texts[1]
    inputs = tuple(parse_list(texts[2]))
    outputs = tuple(parse_list(texts[3]))
    seen: set[str] = set()
    for formal in inputs + outputs:
        if formal in seen:
            raise TemplateError(f"duplicate formal {formal!r} in task {name!r}")
        seen.add(formal)
    body_commands = tuple(commands[1:])
    seen_ids: set[int] = set()
    for declared in _literal_declared_ids(body_commands):
        if declared in seen_ids:
            raise TemplateError(
                f"task {name!r}: step ID {declared} declared twice — "
                "declared IDs must be unique within a template body "
                "(abort targets and control dependencies resolve by ID)"
            )
        seen_ids.add(declared)
    return TaskTemplate(
        name=name,
        inputs=inputs,
        outputs=outputs,
        body_commands=body_commands,
        source=source,
    )


def _literal_declared_ids(commands: tuple[str, ...]):
    """Yield declared step IDs statically visible in top-level body commands.

    Only *literal* declarations are considered: a ``step``/``subtask`` whose
    head is a braced ``{ID Name}`` word (braced words are substitution-free)
    or a 4-argument subtask with a bare all-digit leading ID.  Heads built by
    substitution are only known at interpretation time and are skipped, as
    are commands nested inside ``if``/``while`` bodies (those are braced
    arguments of the control command, not top-level commands).
    """
    for command in commands:
        try:
            words = split_words(command)
        except Exception:
            continue  # malformed: let the interpreter report it in context
        if not words or words[0][1] not in ("step", "subtask"):
            continue
        args = words[1:]
        if not args:
            continue
        if (words[0][1] == "subtask" and len(args) == 4
                and args[0][0] == BARE and args[0][1].isdigit()):
            yield int(args[0][1])
            continue
        if args[0][0] != BRACED:
            continue
        parts = parse_list(args[0][1])
        if len(parts) == 2:
            try:
                yield int(parts[0])
            except ValueError:
                pass


class TemplateLibrary:
    """The set of known task templates (what the "Invoke A Task" list shows)."""

    def __init__(self):
        self._templates: dict[str, TaskTemplate] = {}

    def add_source(self, source: str) -> TaskTemplate:
        template = parse_template(source)
        self._templates[template.name] = template
        return template

    def add_file(self, path: str | Path) -> TaskTemplate:
        return self.add_source(Path(path).read_text())

    def get(self, name: str) -> TaskTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise TemplateError(f"no task template named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def names(self) -> list[str]:
        return sorted(self._templates)


# ------------------------------------------------------------ step parsing


@dataclass(frozen=True)
class StepSpec:
    """One parsed ``step`` (or ``subtask``) command instance."""

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    invocation: str = ""                 # raw invocation details (steps only)
    declared_id: int | None = None       # the integer label, if given
    migratable: bool = True
    resumed_step: int | str | None = None  # int id, "latest", or None (=0)
    control_deps: tuple[int, ...] = ()
    priority: int = 0                    # §1.4's tool-execution priority
    is_subtask: bool = False

    @property
    def tool(self) -> str:
        tokens = self.invocation.split()
        return tokens[0] if tokens else ""


def _parse_head(word: str) -> tuple[int | None, str]:
    """A step's first argument is ``Name`` or ``{ID Name}``."""
    parts = parse_list(word)
    if len(parts) == 2:
        try:
            return int(parts[0]), parts[1]
        except ValueError:
            pass
    return None, word


def parse_step_args(args: list[str]) -> StepSpec:
    """Parse the (already substituted) arguments of a ``step`` command.

    ``step [ID] Name {Inputs} {Outputs} {Invocation} [{Optional}...]``
    """
    if len(args) < 4:
        raise TemplateError(
            f"step needs name, inputs, outputs, invocation; got {len(args)}"
        )
    declared_id, name = _parse_head(args[0])
    inputs = tuple(parse_list(args[1]))
    outputs = tuple(parse_list(args[2]))
    invocation = " ".join(args[3].split())
    migratable = True
    resumed: int | str | None = None
    control: tuple[int, ...] = ()
    priority = 0
    for extra in args[4:]:
        fields = parse_list(extra)
        if not fields:
            continue
        tag = fields[0]
        if tag == "NonMigrate":
            migratable = False
        elif tag == "Priority":
            if len(fields) != 2:
                raise TemplateError("Priority needs exactly one value")
            priority = int(fields[1])
        elif tag == "ResumedStep":
            if len(fields) != 2:
                raise TemplateError("ResumedStep needs exactly one value")
            resumed = fields[1] if fields[1] == "latest" else int(fields[1])
        elif tag == "ControlDependency":
            try:
                control = tuple(int(f) for f in fields[1:])
            except ValueError:
                raise TemplateError(
                    f"ControlDependency values must be step IDs: {fields[1:]}"
                ) from None
            if not control:
                raise TemplateError("ControlDependency needs at least one ID")
        else:
            raise TemplateError(f"unknown step option {tag!r}")
    return StepSpec(
        name=name,
        inputs=inputs,
        outputs=outputs,
        invocation=invocation,
        declared_id=declared_id,
        migratable=migratable,
        resumed_step=resumed,
        control_deps=control,
        priority=priority,
    )


def parse_subtask_args(args: list[str]) -> StepSpec:
    """Parse ``subtask [ID] Task_Name {Inputs} {Outputs}``.

    Accepted forms: 3 arguments (name may be ``{ID Name}``) or 4 arguments
    with a leading bare integer ID.
    """
    if len(args) == 4:
        try:
            declared_id: int | None = int(args[0])
        except ValueError:
            raise TemplateError(
                "subtask with 4 arguments needs a leading integer ID"
            ) from None
        name = args[1]
        in_word, out_word = args[2], args[3]
    elif len(args) == 3:
        declared_id, name = _parse_head(args[0])
        in_word, out_word = args[1], args[2]
    else:
        raise TemplateError(
            f"subtask needs name, inputs, outputs; got {len(args)}"
        )
    return StepSpec(
        name=name,
        inputs=tuple(parse_list(in_word)),
        outputs=tuple(parse_list(out_word)),
        declared_id=declared_id,
        is_subtask=True,
    )
