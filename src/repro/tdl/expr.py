"""The Tcl expression evaluator.

``expr`` (and the conditions of ``if``/``while``/``for``) evaluate C-like
expressions.  Operands are integers, floats, quoted strings, parenthesised
sub-expressions, ``$variables`` and ``[command]`` substitutions (resolved by
the caller via a substitution callback before parsing, exactly like Tcl,
which substitutes then parses).

Precedence (high to low): unary ``- ! ~``; ``* / %``; ``+ -``; ``<< >>``;
``< <= > >=``; ``== !=``; ``&``; ``^``; ``|``; ``&&``; ``||``.
"""

from __future__ import annotations

from repro.errors import TdlError

_TWO_CHAR = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||")


def tokenize_expr(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\n":
            i += 1
            continue
        pair = text[i:i + 2]
        if pair in _TWO_CHAR:
            tokens.append(pair)
            i += 2
            continue
        if ch in "+-*/%()<>!~&^|":
            tokens.append(ch)
            i += 1
            continue
        if ch == '"':
            j = text.find('"', i + 1)
            if j < 0:
                raise TdlError(f"unterminated string in expression {text!r}")
            tokens.append('"' + text[i + 1:j])
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            tokens.append('"' + text[i:j])  # bare word -> string operand
            i = j
            continue
        raise TdlError(f"bad character {ch!r} in expression {text!r}")
    return tokens


Number = int | float


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise TdlError("unexpected end of expression")
        self.pos += 1
        return tok

    # precedence-climbing over binary operator tiers
    _TIERS: list[tuple[str, ...]] = [
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", "<=", ">", ">="),
        ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def parse(self) -> Number | str:
        value = self._tier(0)
        if self.peek() is not None:
            raise TdlError(f"trailing tokens in expression: {self.tokens[self.pos:]}")
        return value

    def _tier(self, level: int):
        if level >= len(self._TIERS):
            return self._unary()
        ops = self._TIERS[level]
        left = self._tier(level + 1)
        while self.peek() in ops:
            op = self.take()
            right = self._tier(level + 1)
            left = _apply(op, left, right)
        return left

    def _unary(self):
        tok = self.peek()
        if tok == "-":
            self.take()
            return -_as_number(self._unary())
        if tok == "+":
            self.take()
            return _as_number(self._unary())
        if tok == "!":
            self.take()
            return 0 if _truth(self._unary()) else 1
        if tok == "~":
            self.take()
            return ~_as_int(self._unary())
        if tok == "(":
            self.take()
            value = self._tier(0)
            if self.take() != ")":
                raise TdlError("missing ')' in expression")
            return value
        tok = self.take()
        if tok.startswith('"'):
            return tok[1:]
        try:
            return int(tok)
        except ValueError:
            try:
                return float(tok)
            except ValueError:
                raise TdlError(f"bad operand {tok!r}") from None


def _as_number(value) -> Number:
    if isinstance(value, (int, float)):
        return value
    try:
        return int(value)
    except (TypeError, ValueError):
        try:
            return float(value)
        except (TypeError, ValueError):
            raise TdlError(f"expected number, got {value!r}") from None


def _as_int(value) -> int:
    num = _as_number(value)
    if isinstance(num, float):
        if num != int(num):
            raise TdlError(f"expected integer, got {num!r}")
        return int(num)
    return num


def _truth(value) -> bool:
    if isinstance(value, str):
        try:
            return _as_number(value) != 0
        except TdlError:
            return bool(value)
    return value != 0


def _apply(op: str, left, right):
    if op in ("==", "!="):
        if isinstance(left, str) or isinstance(right, str):
            try:
                ln, rn = _as_number(left), _as_number(right)
                equal = ln == rn
            except TdlError:
                equal = str(left) == str(right)
        else:
            equal = left == right
        return int(equal if op == "==" else not equal)
    if op == "&&":
        return int(_truth(left) and _truth(right))
    if op == "||":
        return int(_truth(left) or _truth(right))
    ln, rn = _as_number(left), _as_number(right)
    if op == "+":
        return ln + rn
    if op == "-":
        return ln - rn
    if op == "*":
        return ln * rn
    if op == "/":
        if rn == 0:
            raise TdlError("division by zero")
        if isinstance(ln, int) and isinstance(rn, int):
            return ln // rn
        return ln / rn
    if op == "%":
        return _as_int(ln) % _as_int(rn)
    if op == "<":
        return int(ln < rn)
    if op == "<=":
        return int(ln <= rn)
    if op == ">":
        return int(ln > rn)
    if op == ">=":
        return int(ln >= rn)
    if op == "<<":
        return _as_int(ln) << _as_int(rn)
    if op == ">>":
        return _as_int(ln) >> _as_int(rn)
    if op == "&":
        return _as_int(ln) & _as_int(rn)
    if op == "^":
        return _as_int(ln) ^ _as_int(rn)
    if op == "|":
        return _as_int(ln) | _as_int(rn)
    raise TdlError(f"unknown operator {op!r}")


def evaluate(text: str) -> Number | str:
    """Evaluate an already-substituted expression string."""
    tokens = tokenize_expr(text)
    if not tokens:
        raise TdlError("empty expression")
    return _Parser(tokens).parse()


def format_result(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(value)  # Tcl prints 4.0 as 4.0
        return repr(value)
    return str(value)


def truthy(value) -> bool:
    """Public truth test used by if/while/for conditions."""
    return _truth(value)
