"""Physical-level CAD tools: pleasure, panda, wolfe, padplace, the Mosaico
pipeline (atlas, mosaicoGR, PGcurrent, mosaicoDR, octflatten, mizer, sparcs,
vulcan, mosaicoRC), floorplan, and chipstats.

The failure modes the thesis exploits are real here: ``sparcs`` horizontal
compaction fails on congested layouts (driving Mosaico's ``$status``
conditional), ``panda`` rejects PLAs over an area constraint, and ``mosaicoDR``
runs out of routing tracks — each surfaces as a non-zero exit status that the
task manager's programmable-abort machinery reacts to.
"""

from __future__ import annotations

from repro.cad.layout import Cell, Layout, Net, Report, left_edge_tracks
from repro.cad.logic import BooleanNetwork, Cover, Cube, Node, Pla
from repro.cad.registry import ToolCall, ToolRegistry, ToolResult
from repro.errors import ToolError, ToolUsageError

# ------------------------------------------------------------- PLA back end


def fold_pla(pla: Pla) -> Pla:
    """``pleasure``'s core: greedy column folding.

    Two input columns can share a physical column when no product term has
    care literals in both.  Returns a new PLA with ``folded_pairs`` set.
    """
    terms: set[str] = set()
    for cover in pla.covers.values():
        terms.update(str(c) for c in cover.cubes)
    n = pla.num_inputs
    conflict = [[False] * n for _ in range(n)]
    for term in terms:
        cares = [i for i, ch in enumerate(term) if ch != "-"]
        for i in cares:
            for j in cares:
                conflict[i][j] = True
    used: set[int] = set()
    pairs = 0
    for i in range(n):
        if i in used:
            continue
        for j in range(i + 1, n):
            if j in used or conflict[i][j]:
                continue
            used.update((i, j))
            pairs += 1
            break
    return Pla(
        name=pla.name,
        input_names=list(pla.input_names),
        covers={k: Cover.from_dict(v.to_dict()) for k, v in pla.covers.items()},
        folded_pairs=pairs,
        format=pla.format,
    )


def _pleasure(call: ToolCall) -> ToolResult:
    pla = call.input(0)
    if not isinstance(pla, Pla):
        raise ToolUsageError("pleasure", f"expected a PLA, got {type(pla).__name__}")
    folded = fold_pla(pla)
    outs = {name: folded for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"pleasure: folded {folded.folded_pairs} column pairs "
            f"({pla.num_inputs} -> {folded.effective_columns} columns)",
    )


def pla_layout(pla: Pla) -> Layout:
    """``panda``'s core: turn a (possibly folded) PLA into an array layout."""
    columns = 2 * pla.effective_columns + pla.num_outputs
    rows = pla.num_terms + 2
    array = Cell(name=f"{pla.name}_array", width=columns * 4, height=rows * 4)
    nets = [
        Net(name=sig, terminals=(array.name,))
        for sig in list(pla.input_names) + list(pla.covers)
    ]
    return Layout(
        name=pla.name,
        style="pla",
        cells=[array],
        nets=nets,
        stage="detail-routed",
        meta={"logic_depth": 2, "pla_terms": pla.num_terms,
              "pla_columns": columns},
    )


def _panda(call: ToolCall) -> ToolResult:
    pla = call.input(0)
    if not isinstance(pla, Pla):
        raise ToolUsageError("panda", f"expected a PLA, got {type(pla).__name__}")
    layout = pla_layout(pla)
    limit_text = call.option_value("-a")
    if limit_text is not None and layout.area > int(limit_text):
        raise ToolError(
            "panda",
            f"area constraint violated: {layout.area} > {limit_text}",
            status=1,
        )
    outs = {name: layout for name in call.output_names}
    return ToolResult(outputs=outs, log=f"panda: array area {layout.area}")


# --------------------------------------------------------- standard cells


def _as_network(payload, tool: str) -> BooleanNetwork:
    if isinstance(payload, BooleanNetwork):
        return payload
    raise ToolUsageError(tool, f"expected a logic network, got "
                               f"{type(payload).__name__}")


def place_network(net: BooleanNetwork, rows: int) -> Layout:
    """Greedy balanced row placement of one cell per logic node."""
    cells: list[Cell] = []
    row_width = [0] * max(rows, 1)
    row_of: dict[str, int] = {}
    for name in net.topo_order():
        node = net.nodes[name]
        width = 4 + 2 * node.cover.num_literals
        row = min(range(len(row_width)), key=lambda r: row_width[r])
        cells.append(
            Cell(name=name, width=width, height=8, x=row_width[row], y=row * 12)
        )
        row_of[name] = row
        row_width[row] += width + 2
    nets: list[Net] = []
    for name, node in net.nodes.items():
        terminals = tuple([name] + [f for f in node.fanins if f in net.nodes])
        if len(terminals) > 1:
            nets.append(Net(name=f"w_{name}", terminals=terminals))
    return Layout(
        name=net.name,
        style="standard-cell",
        cells=cells,
        nets=nets,
        stage="placed",
        meta={"logic_depth": net.depth, "rows": max(rows, 1),
              "num_nodes": net.num_nodes},
    )


def route_layout(layout: Layout) -> Layout:
    """Left-edge track assignment over net x-spans (one shared channel)."""
    pos = {c.name: c.x + c.width // 2 for c in layout.cells}
    intervals: list[tuple[int, int]] = []
    indices: list[int] = []
    for i, net in enumerate(layout.nets):
        xs = [pos[t] for t in net.terminals if t in pos]
        if len(xs) < 2:
            continue
        intervals.append((min(xs), max(xs)))
        indices.append(i)
    tracks = left_edge_tracks(intervals)
    new_nets = list(layout.nets)
    for idx, track in zip(indices, tracks):
        old = new_nets[idx]
        new_nets[idx] = Net(
            name=old.name, terminals=old.terminals, track=track,
            vias=max(1, len(old.terminals) - 1),
        )
    routed = layout.advanced("detail-routed")
    routed.nets = new_nets
    routed.tracks_used = max(tracks, default=-1) + 1
    return routed


def _wolfe(call: ToolCall) -> ToolResult:
    """``wolfe`` — standard-cell place and route in one shot.

    ``-p refine`` runs the iterative-improvement placement pass between the
    greedy placement and routing (slower, shorter wires).
    """
    net = _as_network(call.input(0), "wolfe")
    rows = int(call.option_value("-r", "2") or "2")
    placed = place_network(net, rows)
    if call.option_value("-p") == "refine":
        placed = refine_placement(placed)
    layout = route_layout(placed)
    outs = {name: layout for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"wolfe: {len(layout.cells)} cells, area {layout.area}, "
            f"{layout.tracks_used} tracks",
    )


def _padplace(call: ToolCall) -> ToolResult:
    """``padplace`` — add I/O pads.

    On a logic network: inserts pad buffer nodes on every primary input and
    output (pads as cells, so placement sees them).  On a layout: adds the
    pad ring.
    """
    payload = call.input(0)
    if isinstance(payload, BooleanNetwork):
        net = payload.copy()
        for pin in list(net.inputs):
            pad = f"pad_{pin}"
            if pad in net.nodes:
                continue
            net.nodes[pad] = Node(
                name=pad, fanins=[pin],
                cover=Cover(num_inputs=1, cubes=[Cube("1")]),
            )
            for node in net.nodes.values():
                if node.name == pad:
                    continue
                node.fanins = [pad if f == pin else f for f in node.fanins]
        for i, pout in enumerate(list(net.outputs)):
            pad = f"pad_{pout}"
            if pad in net.nodes:
                continue
            net.nodes[pad] = Node(
                name=pad, fanins=[pout],
                cover=Cover(num_inputs=1, cubes=[Cube("1")]),
            )
            net.outputs[i] = pad
        net.validate()
        outs = {name: net for name in call.output_names}
        return ToolResult(
            outputs=outs, log=f"padplace: inserted pads on {net.name}"
        )
    if isinstance(payload, Layout):
        w, h = payload.bounding_box()
        ring = [
            Cell(name=f"padring_{side}", width=w + 16 if side in "ns" else 8,
                 height=8 if side in "ns" else h,
                 x=-8 if side in "nsw" else w + 8,
                 y=-8 if side == "s" else (h if side == "n" else 0))
            for side in "nsew"
        ]
        padded = payload.advanced("padded")
        padded.cells = list(payload.cells) + ring
        padded.has_pads = True
        outs = {name: padded for name in call.output_names}
        return ToolResult(outputs=outs, log="padplace: pad ring added")
    raise ToolUsageError("padplace", f"cannot pad {type(payload).__name__}")


def _floorplan(call: ToolCall) -> ToolResult:
    """``floorplan`` — coarse placement of a network (Fig 3.4's first step)."""
    net = _as_network(call.input(0), "floorplan")
    layout = place_network(net, rows=1)
    outs = {name: layout for name in call.output_names}
    return ToolResult(outputs=outs, log=f"floorplan: {len(layout.cells)} blocks")


def _place(call: ToolCall) -> ToolResult:
    """``place`` — refine a floorplan into balanced rows."""
    payload = call.input(0)
    rows = int(call.option_value("-r", "2") or "2")
    if isinstance(payload, Layout):
        cells = sorted(payload.cells, key=lambda c: c.name)
        row_width = [0] * rows
        placed = []
        for cell in cells:
            row = min(range(rows), key=lambda r: row_width[r])
            placed.append(
                Cell(cell.name, cell.width, cell.height,
                     x=row_width[row], y=row * 12)
            )
            row_width[row] += cell.width + 2
        refined = payload.advanced("placed", rows=rows)
        refined.cells = placed
        outs = {name: refined for name in call.output_names}
        return ToolResult(outputs=outs, log=f"place: {rows} rows")
    raise ToolUsageError("place", f"cannot place {type(payload).__name__}")


# ------------------------------------------------------------ Mosaico chain


def _as_layout(payload, tool: str) -> Layout:
    if isinstance(payload, Layout):
        return payload
    if isinstance(payload, BooleanNetwork):
        # Macro-cell flows start from a netlist; give it a coarse placement.
        return place_network(payload, rows=2)
    raise ToolUsageError(tool, f"expected a layout, got {type(payload).__name__}")


def _atlas(call: ToolCall) -> ToolResult:
    """``atlas`` — define the channel areas between cell rows."""
    layout = _as_layout(call.input(0), "atlas")
    rows = layout.meta.get("rows", 2)
    defined = layout.advanced("channels-defined", channels=max(1, rows - 0))
    outs = {name: defined for name in call.output_names}
    return ToolResult(outputs=outs, log=f"atlas: {defined.meta['channels']} channels")


def _mosaico_gr(call: ToolCall) -> ToolResult:
    """``mosaicoGR`` — global routing: assign each net to a channel."""
    layout = _as_layout(call.input(0), "mosaicoGR")
    channels = layout.meta.get("channels", 1)
    ypos = {c.name: c.y for c in layout.cells}
    assignments = {}
    for net in layout.nets:
        ys = [ypos[t] for t in net.terminals if t in ypos]
        assignments[net.name] = (min(ys) // 12) % channels if ys else 0
    routed = layout.advanced("globally-routed", channel_of=assignments)
    outs = {name: routed for name in call.output_names}
    return ToolResult(outputs=outs, log=f"mosaicoGR: {len(assignments)} nets routed")


def _pgcurrent(call: ToolCall) -> ToolResult:
    """``PGcurrent`` — power/ground current estimation report."""
    layout = _as_layout(call.input(0), "PGcurrent")
    power = layout.power_estimate()
    report = Report(
        kind="pg-current",
        text=f"PGcurrent: estimated supply current {power:.3f} mA",
        values=(("current_ma", round(power, 3)),),
    )
    outs = {name: report for name in call.output_names}
    return ToolResult(outputs=outs, log=report.text)


def _mosaico_dr(call: ToolCall) -> ToolResult:
    """``mosaicoDR`` — detailed channel routing (left-edge).

    ``-t <max>`` imposes a routing-capacity limit; exceeding it fails the
    step, which is how "insufficient routing space" (Fig 3.4) happens here.
    """
    layout = _as_layout(call.input(0), "mosaicoDR")
    routed = route_layout(layout)
    limit_text = call.option_value("-t")
    if limit_text is not None and routed.tracks_used > int(limit_text):
        raise ToolError(
            "mosaicoDR",
            f"insufficient routing space: needs {routed.tracks_used} tracks, "
            f"limit {limit_text}",
            status=1,
        )
    outs = {name: routed for name in call.output_names}
    return ToolResult(
        outputs=outs, log=f"mosaicoDR: {routed.tracks_used} tracks used"
    )


def _octflatten(call: ToolCall) -> ToolResult:
    """``octflatten`` — symbolic format flattening (structure-preserving)."""
    layout = _as_layout(call.input(0), "octflatten")
    flat = layout.advanced(layout.stage, flattened=True)
    outs = {name: flat for name in call.output_names}
    return ToolResult(outputs=outs, log="octflatten: flattened")


def _mizer(call: ToolCall) -> ToolResult:
    """``mizer`` — via minimization (halves vias on multi-terminal nets)."""
    layout = _as_layout(call.input(0), "mizer")
    before = layout.via_count
    new_nets = [
        Net(n.name, n.terminals, n.track, max(0, n.vias // 2))
        for n in layout.nets
    ]
    minimized = layout.advanced("via-minimized")
    minimized.nets = new_nets
    outs = {name: minimized for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"mizer: {before} -> {minimized.via_count} vias",
    )


#: Horizontal-first compaction fails at or above this channel density.
SPARCS_DENSITY_LIMIT = 3.0


def compaction_density(layout: Layout) -> float:
    """Congestion metric deciding whether horizontal compaction succeeds."""
    rows = max(1, layout.meta.get("rows", 1))
    return layout.tracks_used / rows


def _sparcs(call: ToolCall) -> ToolResult:
    """``sparcs`` — layout compaction.

    Default is horizontal-first, which fails on congested layouts
    (density >= SPARCS_DENSITY_LIMIT).  ``-v`` selects vertical-first, which
    always succeeds but compacts less.  This reproduces Mosaico's
    ``if {$status} {... Vertical_Compaction ...}`` control flow.
    """
    layout = _as_layout(call.input(0), "sparcs")
    vertical = call.has_flag("-v")
    density = compaction_density(layout)
    if not vertical and density >= SPARCS_DENSITY_LIMIT:
        raise ToolError(
            "sparcs",
            f"horizontal compaction failed: channel density {density:.2f} "
            f">= {SPARCS_DENSITY_LIMIT}",
            status=1,
        )
    shrink = 0.90 if vertical else 0.80
    cells = [
        Cell(c.name, max(1, int(c.width * shrink)), c.height,
             int(c.x * shrink), c.y)
        for c in layout.cells
    ]
    compacted = layout.advanced(
        "compacted", compaction="vertical" if vertical else "horizontal"
    )
    compacted.cells = cells
    outs = {name: compacted for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"sparcs: {'vertical' if vertical else 'horizontal'} compaction, "
            f"area {layout.area} -> {compacted.area}",
    )


def _vulcan(call: ToolCall) -> ToolResult:
    """``vulcan`` — create the protection-frame abstraction view."""
    layout = _as_layout(call.input(0), "vulcan")
    w, h = layout.bounding_box()
    frame = Cell(name=f"{layout.name}_frame", width=w, height=h)
    abstracted = layout.advanced("abstracted", detail_cells=len(layout.cells))
    abstracted.cells = [frame]
    abstracted.nets = []
    outs = {name: abstracted for name in call.output_names}
    return ToolResult(outputs=outs, log=f"vulcan: abstracted {len(layout.cells)} cells")


def _mosaico_rc(call: ToolCall) -> ToolResult:
    """``mosaicoRC`` — routing-completeness check (no outputs, status only)."""
    from repro.cad.layout import STAGES

    layouts = [p for p in call.inputs if isinstance(p, Layout)]
    if not layouts:
        raise ToolUsageError("mosaicoRC", "no layout among inputs")
    # Check the most advanced layout when given both the reference and result.
    layout = max(layouts, key=lambda l: STAGES.index(l.stage))
    unrouted = [
        n.name for n in layout.nets
        if n.track is None and len(n.terminals) > 1
    ]
    if unrouted and layout.stage in ("detail-routed", "via-minimized",
                                     "padded", "compacted", "abstracted"):
        return ToolResult(
            status=1, log=f"mosaicoRC: {len(unrouted)} unrouted nets"
        )
    return ToolResult(log="mosaicoRC: routing complete")


def _chipstats(call: ToolCall) -> ToolResult:
    """``chipstats`` — per-chip statistics report."""
    payload = call.input(0)
    if isinstance(payload, Layout):
        values = (
            ("area", float(payload.area)),
            ("cell_area", float(payload.cell_area)),
            ("delay_ns", round(payload.critical_delay(), 3)),
            ("power_mw", round(payload.power_estimate(), 3)),
            ("cells", float(len(payload.cells))),
            ("nets", float(len(payload.nets))),
            ("vias", float(payload.via_count)),
            ("tracks", float(payload.tracks_used)),
        )
        text = "\n".join(f"{k:>10}: {v}" for k, v in values)
        report = Report(kind="chipstats", text=f"chipstats {payload.name}\n{text}",
                        values=values)
    elif isinstance(payload, BooleanNetwork):
        values = (
            ("nodes", float(payload.num_nodes)),
            ("literals", float(payload.num_literals)),
            ("depth", float(payload.depth)),
        )
        report = Report(kind="chipstats",
                        text=f"chipstats {payload.name} (logic)", values=values)
    else:
        raise ToolUsageError("chipstats", f"cannot report on "
                                          f"{type(payload).__name__}")
    outs = {name: report for name in call.output_names}
    return ToolResult(outputs=outs, log=report.text)


# -------------------------------------------------------------- cost models


def _cost_from_cells(base: float, per_cell: float):
    def cost(call: ToolCall) -> float:
        layout = next((p for p in call.inputs if isinstance(p, Layout)), None)
        if layout is None:
            net = next(
                (p for p in call.inputs if isinstance(p, BooleanNetwork)), None
            )
            n = getattr(net, "num_nodes", 20)
        else:
            n = len(layout.cells)
        return base + per_cell * n
    return cost


def install(registry: ToolRegistry) -> None:
    """Register the physical tool suite."""
    registry.add("pleasure", _pleasure, description="PLA column folding",
                 cost=lambda c: 1.0 + getattr(c.inputs[0], "num_terms", 10) / 10.0
                 if c.inputs else 1.0,
                 man_page="pleasure <pla>")
    registry.add("panda", _panda, description="PLA array layout generation",
                 cost=lambda c: 1.5, man_page="panda [-a <area-limit>] <pla>")
    registry.add("wolfe", _wolfe, description="standard-cell place and route",
                 cost=_cost_from_cells(4.0, 0.15),
                 man_page="wolfe [-f] [-r <rows>] -o <out> <in>")
    registry.add("padplace", _padplace, description="I/O pad placement",
                 cost=_cost_from_cells(1.0, 0.02),
                 man_page="padplace [-c|-f] [-S] -o <out> <in>")
    registry.add("floorplan", _floorplan, description="coarse floorplanning",
                 cost=_cost_from_cells(2.0, 0.05), man_page="floorplan <netlist>")
    registry.add("place", _place, description="row placement refinement",
                 cost=_cost_from_cells(2.5, 0.08),
                 man_page="place [-r <rows>] <layout>")
    registry.add("atlas", _atlas, description="channel definition",
                 cost=_cost_from_cells(1.0, 0.02),
                 man_page="atlas [-i] [-z] -o <out> <in>")
    registry.add("mosaicoGR", _mosaico_gr, description="global routing",
                 cost=_cost_from_cells(2.0, 0.10),
                 man_page="mosaicoGR <in> [-r] [-ov] <out>")
    registry.add("PGcurrent", _pgcurrent,
                 description="power/ground current analysis",
                 cost=_cost_from_cells(1.2, 0.03), man_page="PGcurrent <layout>")
    registry.add("mosaicoDR", _mosaico_dr, description="detailed channel routing",
                 cost=_cost_from_cells(3.0, 0.12),
                 man_page="mosaicoDR [-d] [-t <max-tracks>] [-r YACR] -o <out> <in>")
    registry.add("octflatten", _octflatten, description="symbolic flattening",
                 cost=_cost_from_cells(0.8, 0.01),
                 man_page="octflatten [-r <ref>] -o <out> <in>")
    registry.add("mizer", _mizer, description="via minimization",
                 cost=_cost_from_cells(1.5, 0.05), man_page="mizer -o <out> <in>")
    registry.add("sparcs", _sparcs, description="layout compaction",
                 cost=_cost_from_cells(3.5, 0.10),
                 man_page="sparcs [-v] [-t] [-w <layer>]... -o <out> <in>")
    registry.add("vulcan", _vulcan, description="protection-frame abstraction",
                 cost=_cost_from_cells(1.0, 0.02), man_page="vulcan <in> -o <out>")
    registry.add("mosaicoRC", _mosaico_rc, description="routing completeness check",
                 cost=_cost_from_cells(1.0, 0.04),
                 man_page="mosaicoRC [-m <margin>] [-c <ref>] <layout>")
    registry.add("chipstats", _chipstats, description="chip statistics report",
                 cost=_cost_from_cells(0.8, 0.01), man_page="chipstats <layout>")


# -------------------------------------------------- placement refinement


def refine_placement(layout: Layout, passes: int = 4) -> Layout:
    """Iterative-improvement placement (the TimberWolf-era alternative to
    one-shot greedy): repeatedly swap cell positions when the swap reduces
    half-perimeter wirelength.  Deterministic (fixed scan order), so results
    are reproducible without any RNG.
    """
    cells = list(layout.cells)
    positions = [(c.x, c.y) for c in cells]

    def wirelength() -> int:
        probe = Layout(
            name=layout.name, style=layout.style,
            cells=[
                Cell(c.name, c.width, c.height, x, y)
                for c, (x, y) in zip(cells, positions)
            ],
            nets=layout.nets, stage=layout.stage, meta=dict(layout.meta),
        )
        return probe.wirelength()

    best = wirelength()
    for _ in range(max(1, passes)):
        improved = False
        for i in range(len(cells)):
            for j in range(i + 1, len(cells)):
                positions[i], positions[j] = positions[j], positions[i]
                candidate = wirelength()
                if candidate < best:
                    best = candidate
                    improved = True
                else:
                    positions[i], positions[j] = positions[j], positions[i]
        if not improved:
            break
    refined = layout.advanced(layout.stage, placement="refined")
    refined.cells = [
        Cell(c.name, c.width, c.height, x, y)
        for c, (x, y) in zip(cells, positions)
    ]
    return refined
