"""Synthetic but functional CAD tool suite.

Papyrus treats CAD tools as black boxes with inputs, outputs, command options
and an exit status.  This package provides a suite of tools that mirror the
Berkeley OCT tools named in the thesis (bdsyn, misII, espresso, pleasure,
wolfe, padplace, the Mosaico pipeline, musa, chipstats...) but operate on
synthetic in-memory design data.  The tools do real work — a Quine–McCluskey
minimizer, levelized simulation, greedy placement, left-edge channel routing —
so that object attributes (area, delay, minterm counts) are genuinely
computed, failures genuinely happen, and the metadata-inference layer has real
semantics to describe.
"""

from repro.cad.logic import BehavioralSpec, BooleanNetwork, Cover, Cube
from repro.cad.layout import Layout
from repro.cad.registry import Tool, ToolResult, ToolRegistry, default_registry

__all__ = [
    "BehavioralSpec",
    "BooleanNetwork",
    "Cover",
    "Cube",
    "Layout",
    "Tool",
    "ToolResult",
    "ToolRegistry",
    "default_registry",
]

# Register payload codecs so CAD objects survive database persistence.
from repro.cad.layout import Report
from repro.cad.logic import Pla
from repro.octdb.persistence import register_payload_codec

register_payload_codec(BehavioralSpec, "cad.spec")
register_payload_codec(BooleanNetwork, "cad.network")
register_payload_codec(Cover, "cad.cover")
register_payload_codec(Pla, "cad.pla")
register_payload_codec(Layout, "cad.layout")
register_payload_codec(Report, "cad.report")
