"""Logic-level CAD tools: edit, bdsyn, misII, espresso, musa.

Each tool mirrors its Berkeley OCT namesake's role in the thesis task
templates.  They are genuinely functional on the synthetic representations —
``bdsyn`` compiles behavioral specs into gate networks, ``misII`` performs
sweep / eliminate / node-minimize passes, ``espresso`` runs Quine–McCluskey —
so downstream attributes and failures are real.
"""

from __future__ import annotations

import itertools

from repro.cad import qm
from repro.cad.layout import Report
from repro.cad.logic import (
    BehavioralSpec,
    BooleanNetwork,
    Cover,
    Cube,
    Node,
    Pla,
)
from repro.cad.registry import Tool, ToolCall, ToolRegistry, ToolResult
from repro.errors import ToolUsageError

# ------------------------------------------------------------ gate library

_GATES = {
    "BUF": ["1"],
    "NOT": ["0"],
    "AND2": ["11"],
    "OR2": ["1-", "-1"],
    "NAND2": ["0-", "-0"],
    "NOR2": ["00"],
    "XOR2": ["10", "01"],
    "XNOR2": ["11", "00"],
    "AND3": ["111"],
    "OR3": ["1--", "-1-", "--1"],
    "MAJ3": ["11-", "1-1", "-11"],
    # MUX(select, a, b) = select ? b : a
    "MUX": ["01-", "1-1"],
    "ZERO": [],
}


class _NetBuilder:
    """Helper for composing gate-level networks deterministically."""

    def __init__(self, name: str, inputs: list[str]):
        self.net = BooleanNetwork(name=name, inputs=list(inputs), outputs=[])
        self._counter = itertools.count()

    def gate(self, kind: str, *fanins: str, name: str | None = None) -> str:
        cubes = _GATES[kind]
        node_name = name or f"n{next(self._counter)}_{kind.lower()}"
        width = max(len(fanins), 1)
        self.net.nodes[node_name] = Node(
            name=node_name,
            fanins=list(fanins),
            cover=Cover(num_inputs=width, cubes=[Cube(c) for c in cubes]),
        )
        return node_name

    def const_zero(self, name: str | None = None) -> str:
        node_name = name or f"n{next(self._counter)}_zero"
        # A ZERO gate still needs one (ignored) fanin to keep covers 1-wide.
        anchor = self.net.inputs[0]
        self.net.nodes[node_name] = Node(
            name=node_name, fanins=[anchor], cover=Cover(num_inputs=1, cubes=[])
        )
        return node_name

    def output(self, signal: str, name: str | None = None) -> str:
        if name is not None and name != signal:
            self.gate("BUF", signal, name=name)
            signal = name
        self.net.outputs.append(signal)
        return signal

    def done(self) -> BooleanNetwork:
        self.net.validate()
        return self.net


# ------------------------------------------------------- circuit generators


def _gen_adder(name: str, width: int) -> BooleanNetwork:
    ins = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)] + ["cin"]
    b = _NetBuilder(name, ins)
    carry = "cin"
    for i in range(width):
        p = b.gate("XOR2", f"a{i}", f"b{i}")
        s = b.gate("XOR2", p, carry)
        carry = b.gate("MAJ3", f"a{i}", f"b{i}", carry)
        b.output(s, name=f"sum{i}")
    b.output(carry, name="cout")
    return b.done()


def _gen_shifter(name: str, width: int) -> BooleanNetwork:
    import math

    stages = max(1, math.ceil(math.log2(width))) if width > 1 else 1
    ins = [f"d{i}" for i in range(width)] + [f"s{k}" for k in range(stages)]
    b = _NetBuilder(name, ins)
    current = [f"d{i}" for i in range(width)]
    for k in range(stages):
        amount = 1 << k
        nxt = []
        for i in range(width):
            src = current[(i - amount) % width]
            nxt.append(b.gate("MUX", f"s{k}", current[i], src))
        current = nxt
    for i, sig in enumerate(current):
        b.output(sig, name=f"q{i}")
    return b.done()


def _gen_alu(name: str, width: int) -> BooleanNetwork:
    ins = (
        [f"a{i}" for i in range(width)]
        + [f"b{i}" for i in range(width)]
        + ["op0", "op1"]
    )
    b = _NetBuilder(name, ins)
    carry = b.const_zero()
    for i in range(width):
        and_ = b.gate("AND2", f"a{i}", f"b{i}")
        or_ = b.gate("OR2", f"a{i}", f"b{i}")
        xor_ = b.gate("XOR2", f"a{i}", f"b{i}")
        p = xor_
        add = b.gate("XOR2", p, carry)
        carry = b.gate("MAJ3", f"a{i}", f"b{i}", carry)
        lo = b.gate("MUX", "op0", and_, or_)      # op=x0: and / or
        hi = b.gate("MUX", "op0", xor_, add)      # op=x1: xor / add
        b.output(b.gate("MUX", "op1", lo, hi), name=f"f{i}")
    b.output(carry, name="cout")
    return b.done()


def _gen_decoder(name: str, width: int) -> BooleanNetwork:
    width = min(width, 4)  # 2^w outputs; keep it sane
    ins = [f"a{i}" for i in range(width)]
    b = _NetBuilder(name, ins)
    inv = {i: b.gate("NOT", f"a{i}") for i in range(width)}
    for code in range(1 << width):
        term = f"a{0}" if code & 1 else inv[0]
        for i in range(1, width):
            bit = f"a{i}" if (code >> i) & 1 else inv[i]
            term = b.gate("AND2", term, bit)
        b.output(term, name=f"y{code}")
    return b.done()


def _gen_parity(name: str, width: int) -> BooleanNetwork:
    ins = [f"a{i}" for i in range(width)]
    b = _NetBuilder(name, ins)
    acc = ins[0]
    for i in range(1, width):
        acc = b.gate("XOR2", acc, f"a{i}")
    b.output(acc if width > 1 else b.gate("BUF", acc), name="parity")
    return b.done()


def _gen_comparator(name: str, width: int) -> BooleanNetwork:
    ins = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    b = _NetBuilder(name, ins)
    eq_acc = None
    gt_acc = b.const_zero()
    for i in range(width):  # LSB → MSB; MSB decided last wins
        eq_i = b.gate("XNOR2", f"a{i}", f"b{i}")
        nb = b.gate("NOT", f"b{i}")
        gt_i = b.gate("AND2", f"a{i}", nb)
        gt_acc = b.gate("MUX", eq_i, gt_i, gt_acc)
        eq_acc = eq_i if eq_acc is None else b.gate("AND2", eq_acc, eq_i)
    b.output(eq_acc, name="eq")
    b.output(gt_acc, name="gt")
    return b.done()


def _gen_mux(name: str, width: int) -> BooleanNetwork:
    import math

    selects = max(1, math.ceil(math.log2(width))) if width > 1 else 1
    n = 1 << selects
    ins = [f"d{i}" for i in range(n)] + [f"s{k}" for k in range(selects)]
    b = _NetBuilder(name, ins)
    layer = [f"d{i}" for i in range(n)]
    for k in range(selects):
        layer = [
            b.gate("MUX", f"s{k}", layer[2 * j], layer[2 * j + 1])
            for j in range(len(layer) // 2)
        ]
    b.output(layer[0], name="y")
    return b.done()


def _gen_counter(name: str, width: int) -> BooleanNetwork:
    """Combinational next-state logic of a binary counter (q + 1)."""
    ins = [f"q{i}" for i in range(width)] + ["en"]
    b = _NetBuilder(name, ins)
    carry = "en"
    for i in range(width):
        b.output(b.gate("XOR2", f"q{i}", carry), name=f"d{i}")
        carry = b.gate("AND2", f"q{i}", carry)
    return b.done()


_GENERATORS = {
    "adder": _gen_adder,
    "shifter": _gen_shifter,
    "alu": _gen_alu,
    "decoder": _gen_decoder,
    "parity": _gen_parity,
    "comparator": _gen_comparator,
    "mux": _gen_mux,
    "counter": _gen_counter,
}


def generate_network(spec: BehavioralSpec) -> BooleanNetwork:
    """Compile a behavioral spec into a gate-level Boolean network."""
    return _GENERATORS[spec.kind](spec.name, spec.width)


# ----------------------------------------------------------------- the tools


def _edit(call: ToolCall) -> ToolResult:
    """``edit`` — the interactive entry of a behavioral description.

    Options: ``-kind <kind> -width <w> -name <name>``.  If an input spec is
    supplied, editing "tweaks" it (bumps the width) instead of starting fresh.
    """
    if call.inputs and isinstance(call.inputs[0], BehavioralSpec):
        old = call.inputs[0]
        spec = BehavioralSpec(
            name=call.option_value("-name", old.name),
            kind=call.option_value("-kind", old.kind),
            width=int(call.option_value("-width", str(old.width))),
        )
    else:
        spec = BehavioralSpec(
            name=call.option_value("-name", "cell"),
            kind=call.option_value("-kind", "adder"),
            width=int(call.option_value("-width", "4")),
        )
    outs = {name: spec for name in call.output_names}
    return ToolResult(outputs=outs, log=f"edited {spec.kind}[{spec.width}]")


def _bdsyn(call: ToolCall) -> ToolResult:
    """``bdsyn`` — translate a behavioral description to a logic network."""
    spec = call.input(0)
    if isinstance(spec, BooleanNetwork):  # already compiled; pass through
        net = spec.copy()
    elif isinstance(spec, BehavioralSpec):
        net = generate_network(spec)
    else:
        raise ToolUsageError("bdsyn", f"cannot compile {type(spec).__name__}")
    outs = {name: net for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"bdsyn: {net.num_nodes} nodes, {net.num_literals} literals",
    )


# -- misII internals


def _node_function(
    net: BooleanNetwork, name: str, support: list[str]
) -> frozenset[int]:
    """On-set of signal ``name`` as a function of ``support`` (exhaustive)."""
    on: set[int] = set()
    for assignment in range(1 << len(support)):
        values = {
            sig: bool((assignment >> i) & 1) for i, sig in enumerate(support)
        }
        if _eval_signal(net, name, values):
            on.add(assignment)
    return frozenset(on)


def _eval_signal(net: BooleanNetwork, name: str, values: dict[str, bool]) -> bool:
    if name in values:
        return values[name]
    node = net.nodes[name]
    idx = 0
    for i, fanin in enumerate(node.fanins):
        if _eval_signal(net, fanin, values):
            idx |= 1 << i
    result = node.cover.evaluate(idx)
    values[name] = result
    return result


_ELIMINATE_FANIN_LIMIT = 8
_MINIMIZE_FANIN_LIMIT = 10


def optimize_network(net: BooleanNetwork) -> BooleanNetwork:
    """The misII pass pipeline: sweep → eliminate → node minimize.

    * sweep: drop nodes that reach no primary output;
    * eliminate: collapse single-fanout nodes into their consumer when the
      merged support stays small;
    * minimize: re-express every small node with a QM-minimal cover.
    """
    net = net.copy()

    # -- sweep
    live: set[str] = set()
    stack = [o for o in net.outputs if o in net.nodes]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(
            f for f in net.nodes[name].fanins if f in net.nodes and f not in live
        )
    for dead in [n for n in net.nodes if n not in live]:
        del net.nodes[dead]

    # -- eliminate (iterate to fixpoint; bounded by node count)
    changed = True
    while changed:
        changed = False
        fanouts = net.fanout_counts()
        for name in list(net.nodes):
            node = net.nodes.get(name)
            if node is None:
                continue
            for fanin in list(node.fanins):
                child = net.nodes.get(fanin)
                if child is None or fanouts.get(fanin, 0) != 1:
                    continue
                if fanin in net.outputs:
                    continue
                merged_support = list(dict.fromkeys(
                    [f for f in node.fanins if f != fanin] + child.fanins
                ))
                if len(merged_support) > _ELIMINATE_FANIN_LIMIT:
                    continue
                on = _node_support_function(net, node, merged_support)
                cover = qm.minimize_minterms(len(merged_support), on)
                # misII's value test: only eliminate when the collapsed node
                # is no costlier than the two nodes it replaces.
                if cover.num_literals > (node.cover.num_literals
                                         + child.cover.num_literals):
                    continue
                net.nodes[name] = Node(
                    name=name, fanins=merged_support, cover=cover
                )
                del net.nodes[fanin]
                changed = True
                break

    # -- node minimize
    for name, node in list(net.nodes.items()):
        if len(node.fanins) > _MINIMIZE_FANIN_LIMIT:
            continue
        on = node.cover.on_set()
        cover = qm.minimize_minterms(len(node.fanins), on)
        if cover.num_literals <= node.cover.num_literals:
            net.nodes[name] = Node(
                name=name, fanins=list(node.fanins),
                cover=Cover(
                    num_inputs=max(len(node.fanins), 1), cubes=list(cover.cubes)
                ),
            )
    net.validate()
    return net


def _node_support_function(
    net: BooleanNetwork, node: Node, support: list[str]
) -> frozenset[int]:
    """On-set of a node's function over an arbitrary small support set."""
    on: set[int] = set()
    for assignment in range(1 << len(support)):
        base = {
            sig: bool((assignment >> i) & 1) for i, sig in enumerate(support)
        }
        idx = 0
        for i, fanin in enumerate(node.fanins):
            if _eval_signal(net, fanin, dict(base)):
                idx |= 1 << i
        if node.cover.evaluate(idx):
            on.add(assignment)
    return frozenset(on)


def _misII(call: ToolCall) -> ToolResult:
    """``misII`` — multi-level logic optimization."""
    net = call.input(0)
    if not isinstance(net, BooleanNetwork):
        raise ToolUsageError("misII", f"expected a logic network, got "
                                      f"{type(net).__name__}")
    before = net.num_literals
    optimized = optimize_network(net)
    outs = {name: optimized for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"misII: {before} -> {optimized.num_literals} literals",
    )


def collapse_to_pla(net: BooleanNetwork, max_inputs: int = 12) -> Pla:
    """Flatten a multi-level network into a two-level multi-output PLA."""
    if len(net.inputs) > max_inputs:
        raise ToolUsageError(
            "espresso",
            f"cannot collapse {len(net.inputs)}-input network to two levels",
        )
    covers: dict[str, Cover] = {}
    for out in net.outputs:
        on = _node_function(net, out, net.inputs)
        covers[out] = Cover.from_minterms(len(net.inputs), set(on))
    return Pla(name=net.name, input_names=list(net.inputs), covers=covers)


def _espresso(call: ToolCall) -> ToolResult:
    """``espresso`` — two-level minimization.

    Accepts a :class:`Cover`, a :class:`Pla`, or a network (collapsed first).
    ``-o equitott`` yields equation format, ``-o pleasure`` PLA format
    (Fig 6.4's TSD).
    """
    payload = call.input(0)
    fmt = {"equitott": "equation", "pleasure": "PLA"}.get(
        call.option_value("-o", "pleasure") or "pleasure", "PLA"
    )
    if isinstance(payload, BooleanNetwork):
        pla = collapse_to_pla(payload)
    elif isinstance(payload, Cover):
        pla = Pla(
            name=payload.output_name, input_names=list(payload.input_names),
            covers={payload.output_name: payload},
        )
    elif isinstance(payload, Pla):
        pla = payload
    else:
        raise ToolUsageError(
            "espresso", f"cannot minimize {type(payload).__name__}"
        )
    minimized = Pla(
        name=pla.name,
        input_names=list(pla.input_names),
        covers={out: qm.minimize(cover) for out, cover in pla.covers.items()},
        format=fmt,
    )
    outs = {name: minimized for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=(
            f"espresso: {pla.num_terms} -> {minimized.num_terms} terms, "
            f"{pla.num_literals} -> {minimized.num_literals} literals"
        ),
    )


def _musa(call: ToolCall) -> ToolResult:
    """``musa`` — multi-level simulator.

    ``-i <command file>`` supplies the stimulus: a string payload of the form
    ``"random <n> <seed>"`` or explicit ``"vector <bits>"`` lines.  If a
    reference :class:`BehavioralSpec` is among the inputs, simulation results
    are checked against a freshly compiled golden network.
    """
    net = None
    stimulus = None
    golden_spec = None
    for payload in call.inputs:
        if isinstance(payload, BooleanNetwork) and net is None:
            net = payload
        elif isinstance(payload, str) and stimulus is None:
            stimulus = payload
        elif isinstance(payload, BehavioralSpec):
            golden_spec = payload
    if net is None:
        raise ToolUsageError("musa", "no logic network among inputs")
    if stimulus and stimulus.split()[:1] == ["cycles"]:
        return _musa_sequential(call, net, stimulus)
    vectors = _parse_stimulus(stimulus or "random 16 1", len(net.inputs))
    golden = generate_network(golden_spec) if golden_spec else None
    mismatches = 0
    for vec in vectors:
        assignment = {
            sig: bool((vec >> i) & 1) for i, sig in enumerate(net.inputs)
        }
        values = net.evaluate(assignment)
        if golden is not None and golden.inputs == net.inputs:
            gvalues = golden.evaluate(assignment)
            for out in net.outputs:
                if out in gvalues and values[out] != gvalues[out]:
                    mismatches += 1
    report = Report(
        kind="simulation",
        text=(
            f"musa: simulated {len(vectors)} vectors on {net.name}; "
            f"{mismatches} mismatches"
        ),
        values=(("vectors", float(len(vectors))),
                ("mismatches", float(mismatches))),
    )
    outs = {name: report for name in call.output_names}
    status = 0 if mismatches == 0 else 1
    return ToolResult(status=status, outputs=outs, log=report.text)


def _musa_sequential(call: ToolCall, net: BooleanNetwork,
                     stimulus: str) -> ToolResult:
    """Multi-cycle simulation of a next-state network.

    Stimulus ``"cycles N [start]"`` clocks the network N times: state inputs
    ``q<i>`` are fed from the previous cycle's ``d<i>`` outputs; any other
    inputs (e.g. ``en``) are held at 1.  Produces the state trace report.
    """
    parts = stimulus.split()
    cycles = int(parts[1]) if len(parts) > 1 else 8
    state = int(parts[2]) if len(parts) > 2 else 0
    state_bits = sorted(
        (s for s in net.inputs if s.startswith("q") and s[1:].isdigit()),
        key=lambda s: int(s[1:]),
    )
    next_bits = [f"d{s[1:]}" for s in state_bits]
    if not state_bits or any(d not in net.outputs for d in next_bits):
        raise ToolUsageError(
            "musa", "cycles stimulus needs q<i> inputs and d<i> outputs"
        )
    trace = [state]
    for _ in range(cycles):
        assignment = {s: bool((state >> i) & 1)
                      for i, s in enumerate(state_bits)}
        for other in net.inputs:
            if other not in state_bits:
                assignment[other] = True
        values = net.evaluate(assignment)
        state = sum(values[d] << i for i, d in enumerate(next_bits))
        trace.append(state)
    report = Report(
        kind="simulation",
        text=f"musa: {cycles} cycles on {net.name}: "
             + " -> ".join(str(s) for s in trace),
        values=(("cycles", float(cycles)), ("final_state", float(state)),
                ("mismatches", 0.0)),
    )
    outs = {name: report for name in call.output_names}
    return ToolResult(outputs=outs, log=report.text)


def _parse_stimulus(text: str, width: int) -> list[int]:
    vectors: list[int] = []
    for line in text.splitlines() or [text]:
        parts = line.split()
        if not parts:
            continue
        if parts[0] == "random":
            count = int(parts[1]) if len(parts) > 1 else 16
            seed = int(parts[2]) if len(parts) > 2 else 1
            state = seed or 1
            for _ in range(count):
                # xorshift32: deterministic, seedable, no RNG import needed
                state ^= (state << 13) & 0xFFFFFFFF
                state ^= state >> 17
                state ^= (state << 5) & 0xFFFFFFFF
                vectors.append(state & ((1 << width) - 1))
        elif parts[0] == "vector":
            vectors.append(int(parts[1], 2))
    return vectors


# ----------------------------------------------------------- cost models


def _cost_bdsyn(call: ToolCall) -> float:
    spec = call.inputs[0] if call.inputs else None
    width = getattr(spec, "width", 4)
    return 0.5 + 0.2 * width


def _cost_mis(call: ToolCall) -> float:
    net = call.inputs[0] if call.inputs else None
    return 2.0 + getattr(net, "num_literals", 50) / 12.0


def _cost_espresso(call: ToolCall) -> float:
    payload = call.inputs[0] if call.inputs else None
    terms = getattr(payload, "num_terms", 16)
    inputs = getattr(payload, "num_inputs", 6)
    if isinstance(payload, BooleanNetwork):
        inputs = len(payload.inputs)
        terms = payload.num_literals
    return 1.0 + terms / 8.0 + (1 << min(inputs, 12)) / 512.0


def _cost_musa(call: ToolCall) -> float:
    net = next((p for p in call.inputs if isinstance(p, BooleanNetwork)), None)
    return 1.5 + getattr(net, "num_nodes", 30) / 15.0


def install(registry: ToolRegistry) -> None:
    """Register the logic tool suite."""
    registry.add(
        "edit", _edit,
        description="interactive behavioral-description editor",
        interactive=True, migratable=False,
        cost=lambda call: 3.0,
        man_page="edit -kind <kind> -width <w> [-name <name>]",
    )
    registry.add(
        "bdsyn", _bdsyn,
        description="behavioral-to-logic translation",
        cost=_cost_bdsyn,
        man_page="bdsyn -o <out> <in>",
    )
    registry.add(
        "misII", _misII,
        description="multi-level logic optimization",
        cost=_cost_mis,
        man_page="misII [-f script] [-T oct] -o <out> <in>",
    )
    registry.add(
        "espresso", _espresso,
        description="two-level logic minimization (Quine-McCluskey)",
        cost=_cost_espresso,
        man_page="espresso [-o equitott|pleasure] <in>",
    )
    registry.add(
        "octmap", _octmap,
        description="technology mapping into 2-input gates",
        cost=lambda call: 1.5 + getattr(call.inputs[0], "num_literals", 30) / 20.0
        if call.inputs else 1.5,
        man_page="octmap -o <out> <in>",
    )
    registry.add(
        "octverify", _octverify,
        description="combinational equivalence check",
        cost=lambda call: 2.0 + sum(
            (1 << min(len(getattr(p, "inputs", getattr(p, "input_names", []))), 12)) / 1024.0
            for p in call.inputs),
        man_page="octverify <repr-a> <repr-b> [> report]",
    )
    registry.add(
        "musa", _musa,
        description="multi-level logic simulation",
        cost=_cost_musa,
        man_page="musa -i <command-file> <logic> [golden-spec]",
    )


def _collapse_on_set(payload, tool: str) -> tuple[list[str], frozenset[int], dict[str, frozenset[int]]]:
    """(input names, dummy, per-output on-sets) of any logic-level payload."""
    if isinstance(payload, BehavioralSpec):
        payload = generate_network(payload)
    if isinstance(payload, BooleanNetwork):
        if len(payload.inputs) > 12:
            raise ToolUsageError(tool, "network support too wide to verify")
        return (
            list(payload.inputs), frozenset(),
            {out: _node_function(payload, out, payload.inputs)
             for out in payload.outputs},
        )
    if isinstance(payload, Cover):
        return (list(payload.input_names), frozenset(),
                {payload.output_name: payload.on_set()})
    if isinstance(payload, Pla):
        return (list(payload.input_names), frozenset(),
                {out: cover.on_set() for out, cover in payload.covers.items()})
    raise ToolUsageError(tool, f"cannot verify {type(payload).__name__}")


def _octverify(call: ToolCall) -> ToolResult:
    """``octverify`` — combinational equivalence check.

    Takes two logic-level representations (spec / network / cover / PLA),
    exhaustively compares their Boolean functions output-by-output, and
    exits non-zero on any mismatch.  Output (if requested): a report.
    """
    if len(call.inputs) < 2:
        raise ToolUsageError("octverify", "needs two representations")
    ins_a, _, funcs_a = _collapse_on_set(call.input(0), "octverify")
    ins_b, _, funcs_b = _collapse_on_set(call.input(1), "octverify")
    if len(ins_a) != len(ins_b):
        return ToolResult(
            status=1,
            outputs={n: Report("equivalence",
                               "octverify: input counts differ",
                               (("equal", 0.0),))
                     for n in call.output_names},
            log=f"octverify: input counts differ "
                f"({len(ins_a)} vs {len(ins_b)})",
        )
    mismatched: list[str] = []
    compared = 0
    # match outputs by name where possible, else by position
    names_a, names_b = list(funcs_a), list(funcs_b)
    pairs = []
    for name in names_a:
        if name in funcs_b:
            pairs.append((name, name))
    if not pairs and len(names_a) == len(names_b):
        pairs = list(zip(sorted(names_a), sorted(names_b)))
    for out_a, out_b in pairs:
        compared += 1
        if funcs_a[out_a] != funcs_b[out_b]:
            mismatched.append(out_a)
    equal = not mismatched and compared > 0
    report = Report(
        kind="equivalence",
        text=(f"octverify: {compared} outputs compared, "
              + ("equivalent" if equal
                 else f"mismatch on {', '.join(mismatched) or '(nothing comparable)'}")),
        values=(("compared", float(compared)),
                ("mismatches", float(len(mismatched))),
                ("equal", 1.0 if equal else 0.0)),
    )
    outs = {name: report for name in call.output_names}
    return ToolResult(status=0 if equal else 1, outputs=outs, log=report.text)


# -------------------------------------------------------- technology mapping


def map_to_gates(net: BooleanNetwork) -> BooleanNetwork:
    """``octmap``'s core: decompose every node into 2-input AND/OR/NOT gates.

    Each SOP node becomes: one inverter per complemented literal, a balanced
    AND2 tree per product term, and a balanced OR2 tree across terms —
    the classic naive technology map into a {AND2, OR2, NOT, BUF} library.
    The result computes the same functions (node-for-node) with max fanin 2.
    """
    mapped = BooleanNetwork(name=net.name, inputs=list(net.inputs),
                            outputs=list(net.outputs))
    counter = itertools.count()

    def fresh(kind: str) -> str:
        return f"m{next(counter)}_{kind}"

    def emit(kind: str, fanins: list[str], name: str | None = None) -> str:
        cubes = {"AND2": ["11"], "OR2": ["1-", "-1"], "NOT": ["0"],
                 "BUF": ["1"], "ZERO": []}[kind]
        node_name = name or fresh(kind.lower())
        width = max(len(fanins), 1)
        mapped.nodes[node_name] = Node(
            name=node_name, fanins=list(fanins),
            cover=Cover(num_inputs=width, cubes=[Cube(c) for c in cubes]),
        )
        return node_name

    def tree(kind: str, leaves: list[str], name: str | None = None) -> str:
        if len(leaves) == 1:
            return emit("BUF", leaves, name=name) if name else leaves[0]
        while len(leaves) > 2:
            paired = []
            for i in range(0, len(leaves) - 1, 2):
                paired.append(emit(kind, [leaves[i], leaves[i + 1]]))
            if len(leaves) % 2:
                paired.append(leaves[-1])
            leaves = paired
        return emit(kind, leaves, name=name)

    inverted: dict[str, str] = {}

    def inv(signal: str) -> str:
        if signal not in inverted:
            inverted[signal] = emit("NOT", [signal])
        return inverted[signal]

    for name in net.topo_order():
        node = net.nodes[name]
        if not node.cover.cubes:
            # constant zero: AND of a signal and its complement
            anchor = node.fanins[0] if node.fanins else net.inputs[0]
            emit("AND2", [anchor, inv(anchor)], name=name)
            continue
        term_signals: list[str] = []
        for cube in node.cover.cubes:
            literals: list[str] = []
            for i, ch in enumerate(cube):
                fanin = node.fanins[i]
                if ch == "1":
                    literals.append(fanin)
                elif ch == "0":
                    literals.append(inv(fanin))
            if not literals:  # the universal cube: constant one
                anchor = node.fanins[0] if node.fanins else net.inputs[0]
                one = emit("OR2", [anchor, inv(anchor)])
                literals = [one]
            term_signals.append(tree("AND2", literals))
        tree("OR2", term_signals, name=name)
    mapped.validate()
    return mapped


def _octmap(call: ToolCall) -> ToolResult:
    """``octmap`` — naive technology mapping into a 2-input gate library."""
    net = call.input(0)
    if isinstance(net, BehavioralSpec):
        net = generate_network(net)
    if not isinstance(net, BooleanNetwork):
        raise ToolUsageError("octmap", f"cannot map {type(net).__name__}")
    mapped = map_to_gates(net)
    outs = {name: mapped for name in call.output_names}
    return ToolResult(
        outputs=outs,
        log=f"octmap: {net.num_nodes} -> {mapped.num_nodes} gates "
            f"(max fanin 2)",
    )
