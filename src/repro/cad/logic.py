"""Logic-level design representations.

Three levels, mirroring the OCT flow the thesis drives:

* :class:`BehavioralSpec` — a parametric high-level description (what the
  designer "edits"); ``bdsyn`` compiles it into a Boolean network.
* :class:`BooleanNetwork` — a multi-level network of SOP nodes (the ``.blif``
  / ``logic`` objects that misII, musa and wolfe consume).
* :class:`Cover` — a two-level sum-of-products cover (the PLA objects that
  espresso, pleasure and panda consume).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ToolUsageError

# --------------------------------------------------------------------- cubes


class Cube(str):
    """A product term over n inputs, as a string over ``{'0','1','-'}``.

    ``'1-0'`` means  x0 AND NOT x2  (x1 unused).
    """

    __slots__ = ()

    def __new__(cls, text: str) -> "Cube":
        if not text or any(ch not in "01-" for ch in text):
            raise ValueError(f"bad cube {text!r}")
        return super().__new__(cls, text)

    @property
    def width(self) -> int:
        return len(self)

    @property
    def literals(self) -> int:
        """Number of care positions."""
        return sum(1 for ch in self if ch != "-")

    def covers_minterm(self, minterm: int) -> bool:
        """Does this cube contain the given minterm (bit 0 = input 0)?"""
        for i, ch in enumerate(self):
            bit = (minterm >> i) & 1
            if ch == "0" and bit:
                return False
            if ch == "1" and not bit:
                return False
        return True

    def covers_cube(self, other: "Cube") -> bool:
        """Does this cube contain every minterm of ``other``?"""
        if len(self) != len(other):
            raise ValueError("cube width mismatch")
        for a, b in zip(self, other):
            if a != "-" and a != b:
                return False
        return True

    def minterms(self) -> list[int]:
        """All minterms covered by this cube."""
        free = [i for i, ch in enumerate(self) if ch == "-"]
        base = 0
        for i, ch in enumerate(self):
            if ch == "1":
                base |= 1 << i
        result = []
        for bits in range(1 << len(free)):
            m = base
            for j, pos in enumerate(free):
                if (bits >> j) & 1:
                    m |= 1 << pos
            result.append(m)
        return result

    def merge(self, other: "Cube") -> "Cube | None":
        """Combine two cubes differing in exactly one care position (QM step)."""
        if len(self) != len(other):
            raise ValueError("cube width mismatch")
        diff = -1
        for i, (a, b) in enumerate(zip(self, other)):
            if a != b:
                if a == "-" or b == "-" or diff >= 0:
                    return None
                diff = i
        if diff < 0:
            return None
        return Cube(self[:diff] + "-" + self[diff + 1:])


def minterm_cube(minterm: int, width: int) -> Cube:
    """The fully-specified cube for one minterm."""
    return Cube("".join("1" if (minterm >> i) & 1 else "0" for i in range(width)))


# -------------------------------------------------------------------- covers


@dataclass
class Cover:
    """A two-level SOP cover (a PLA personality).

    ``cubes`` is an ordered list of product terms; the cover's on-set is the
    union of the cubes' minterms.  Multi-output PLAs are modeled as a dict of
    single-output covers inside :class:`Pla` payloads built by the tools; at
    this level one cover = one output function.
    """

    num_inputs: int
    cubes: list[Cube] = field(default_factory=list)
    input_names: list[str] = field(default_factory=list)
    output_name: str = "f"

    def __post_init__(self):
        if self.num_inputs < 1:
            raise ToolUsageError("cover", f"bad input count {self.num_inputs}")
        for cube in self.cubes:
            if cube.width != self.num_inputs:
                raise ToolUsageError(
                    "cover", f"cube {cube!r} has width {cube.width}, "
                    f"expected {self.num_inputs}"
                )
        if not self.input_names:
            self.input_names = [f"x{i}" for i in range(self.num_inputs)]

    # -- function semantics

    def evaluate(self, assignment: int) -> bool:
        """Value of the function on one input assignment (bit i = input i)."""
        return any(cube.covers_minterm(assignment) for cube in self.cubes)

    def on_set(self) -> frozenset[int]:
        """The set of minterms on which the cover is 1 (exponential in width)."""
        if self.num_inputs > 16:
            raise ToolUsageError("cover", "on_set() only supported up to 16 inputs")
        return frozenset(
            m for m in range(1 << self.num_inputs) if self.evaluate(m)
        )

    def equivalent(self, other: "Cover") -> bool:
        if self.num_inputs != other.num_inputs:
            return False
        return self.on_set() == other.on_set()

    # -- cost metrics (what chip attributes derive from)

    @property
    def num_terms(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(cube.literals for cube in self.cubes)

    def size_estimate(self) -> int:
        return 16 + self.num_terms * (self.num_inputs + 2)

    # -- persistence

    def to_dict(self) -> dict:
        return {
            "num_inputs": self.num_inputs,
            "cubes": [str(c) for c in self.cubes],
            "input_names": list(self.input_names),
            "output_name": self.output_name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Cover":
        return cls(
            num_inputs=data["num_inputs"],
            cubes=[Cube(c) for c in data["cubes"]],
            input_names=list(data["input_names"]),
            output_name=data.get("output_name", "f"),
        )

    @classmethod
    def from_minterms(
        cls, num_inputs: int, minterms: set[int] | frozenset[int]
    ) -> "Cover":
        return cls(
            num_inputs=num_inputs,
            cubes=[minterm_cube(m, num_inputs) for m in sorted(minterms)],
        )


# ------------------------------------------------------------------ networks


@dataclass
class Node:
    """One internal node of a Boolean network: an SOP over named fanins."""

    name: str
    fanins: list[str]
    cover: Cover  # cover over len(fanins) inputs, in fanin order

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fanins": list(self.fanins),
            "cover": self.cover.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Node":
        return cls(
            name=data["name"],
            fanins=list(data["fanins"]),
            cover=Cover.from_dict(data["cover"]),
        )


@dataclass
class BooleanNetwork:
    """A multi-level combinational logic network (the ``logic`` object type)."""

    name: str
    inputs: list[str]
    outputs: list[str]
    nodes: dict[str, Node] = field(default_factory=dict)

    def validate(self) -> None:
        """Check structural sanity: drivers exist, no combinational cycles."""
        known = set(self.inputs) | set(self.nodes)
        for node in self.nodes.values():
            for fanin in node.fanins:
                if fanin not in known:
                    raise ToolUsageError(
                        "network", f"node {node.name!r} references unknown "
                        f"signal {fanin!r}"
                    )
        for out in self.outputs:
            if out not in known:
                raise ToolUsageError("network", f"undriven output {out!r}")
        self.levelize()  # raises on cycles

    def levelize(self) -> dict[str, int]:
        """Topological levels; raises ToolUsageError on a combinational cycle."""
        levels: dict[str, int] = {name: 0 for name in self.inputs}
        visiting: set[str] = set()

        def level_of(name: str) -> int:
            if name in levels:
                return levels[name]
            if name in visiting:
                raise ToolUsageError("network", f"combinational cycle at {name!r}")
            visiting.add(name)
            node = self.nodes[name]
            lvl = 1 + max((level_of(f) for f in node.fanins), default=0)
            visiting.discard(name)
            levels[name] = lvl
            return lvl

        for name in self.nodes:
            level_of(name)
        return levels

    def topo_order(self) -> list[str]:
        """Internal node names in topological (evaluation) order."""
        levels = self.levelize()
        return sorted(self.nodes, key=lambda n: (levels[n], n))

    def evaluate(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Simulate one input vector; returns values of every signal."""
        values = dict(assignment)
        for missing in self.inputs:
            values.setdefault(missing, False)
        for name in self.topo_order():
            node = self.nodes[name]
            idx = 0
            for i, fanin in enumerate(node.fanins):
                if values[fanin]:
                    idx |= 1 << i
            values[name] = node.cover.evaluate(idx)
        return values

    # -- cost metrics

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_literals(self) -> int:
        return sum(node.cover.num_literals for node in self.nodes.values())

    @property
    def depth(self) -> int:
        levels = self.levelize()
        return max((levels[o] for o in self.outputs if o in levels), default=0)

    def size_estimate(self) -> int:
        return 32 + sum(
            8 + node.cover.size_estimate() for node in self.nodes.values()
        )

    def fanout_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {s: 0 for s in itertools.chain(self.inputs, self.nodes)}
        for node in self.nodes.values():
            for fanin in node.fanins:
                counts[fanin] = counts.get(fanin, 0) + 1
        for out in self.outputs:
            counts[out] = counts.get(out, 0) + 1
        return counts

    def copy(self) -> "BooleanNetwork":
        return BooleanNetwork.from_dict(self.to_dict())

    # -- persistence

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "nodes": [n.to_dict() for n in self.nodes.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BooleanNetwork":
        net = cls(
            name=data["name"],
            inputs=list(data["inputs"]),
            outputs=list(data["outputs"]),
        )
        for nd in data["nodes"]:
            node = Node.from_dict(nd)
            net.nodes[node.name] = node
        return net


# ------------------------------------------------------------------ behavior


@dataclass(frozen=True)
class BehavioralSpec:
    """A parametric high-level circuit description.

    ``kind`` selects a generator family understood by ``bdsyn``:
    ``shifter``, ``adder``, ``alu``, ``decoder``, ``parity``, ``comparator``,
    ``mux``, ``counter``.  ``width`` scales the circuit.
    """

    name: str
    kind: str
    width: int = 4

    KINDS = ("shifter", "adder", "alu", "decoder", "parity",
             "comparator", "mux", "counter")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ToolUsageError("spec", f"unknown circuit kind {self.kind!r}")
        if not 1 <= self.width <= 16:
            raise ToolUsageError("spec", f"width {self.width} out of range 1..16")

    def size_estimate(self) -> int:
        return 64 + 4 * self.width

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind, "width": self.width}

    @classmethod
    def from_dict(cls, data: dict) -> "BehavioralSpec":
        return cls(name=data["name"], kind=data["kind"], width=data["width"])


# ----------------------------------------------------------------------- PLA


@dataclass
class Pla:
    """A multi-output PLA personality: one cover per output over shared inputs.

    ``folded_pairs`` is set by the ``pleasure`` folding tool and reduces the
    effective column count that ``panda`` turns into array area.
    """

    name: str
    input_names: list[str]
    covers: dict[str, Cover] = field(default_factory=dict)
    folded_pairs: int = 0
    format: str = "PLA"   # "PLA" or "equation" (espresso -o choice)

    @property
    def num_inputs(self) -> int:
        return len(self.input_names)

    @property
    def num_outputs(self) -> int:
        return len(self.covers)

    @property
    def num_terms(self) -> int:
        """Distinct product terms across outputs (shared AND-plane rows)."""
        terms: set[str] = set()
        for cover in self.covers.values():
            terms.update(str(c) for c in cover.cubes)
        return len(terms)

    @property
    def num_literals(self) -> int:
        return sum(c.num_literals for c in self.covers.values())

    @property
    def effective_columns(self) -> int:
        """Input columns after folding (each folded pair shares a column)."""
        return self.num_inputs - self.folded_pairs

    def size_estimate(self) -> int:
        return 32 + sum(c.size_estimate() for c in self.covers.values())

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "input_names": list(self.input_names),
            "covers": {k: v.to_dict() for k, v in self.covers.items()},
            "folded_pairs": self.folded_pairs,
            "format": self.format,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Pla":
        return cls(
            name=data["name"],
            input_names=list(data["input_names"]),
            covers={k: Cover.from_dict(v) for k, v in data["covers"].items()},
            folded_pairs=data.get("folded_pairs", 0),
            format=data.get("format", "PLA"),
        )
