"""Quine–McCluskey two-level minimization.

This is the engine behind the ``espresso`` tool stub.  It is a real minimizer:
prime implicants are generated exactly, then a cover is selected with the
classic essential-prime + greedy set-cover heuristic.  The result is always
equivalent to the input function and never has more literals than the
naive minterm cover.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cad.logic import Cover, Cube, minterm_cube


def prime_implicants(
    width: int,
    on_set: frozenset[int] | set[int],
    dc_set: frozenset[int] | set[int] = frozenset(),
) -> list[Cube]:
    """All prime implicants of the (on ∪ dc) set.

    Classic tabular method: repeatedly merge cube pairs differing in one care
    position; cubes that never merge are prime.
    """
    if not on_set:
        return []
    current: set[str] = {
        str(minterm_cube(m, width)) for m in set(on_set) | set(dc_set)
    }
    primes: set[str] = set()
    while current:
        merged: set[str] = set()
        used: set[str] = set()
        # Two cubes combine iff they are identical except at one care
        # position where one has '0' and the other '1' (same dash pattern).
        # Instead of scanning pairs, flip each '0' and look the partner up —
        # O(n * width) per level instead of O(n^2).
        for cube in current:
            for i, ch in enumerate(cube):
                if ch != "0":
                    continue
                partner = cube[:i] + "1" + cube[i + 1:]
                if partner in current:
                    merged.add(cube[:i] + "-" + cube[i + 1:])
                    used.add(cube)
                    used.add(partner)
        primes |= current - used
        current = merged
    return sorted(Cube(p) for p in primes)


def select_cover(
    width: int,
    on_set: frozenset[int] | set[int],
    primes: list[Cube],
) -> list[Cube]:
    """Select a small subset of ``primes`` covering every on-set minterm.

    Essential primes first, then greedy largest-coverage selection.  Don't-care
    minterms need not be covered.
    """
    remaining = set(on_set)
    coverage: dict[Cube, set[int]] = {
        p: {m for m in p.minterms() if m in remaining} for p in primes
    }
    coverage = {p: ms for p, ms in coverage.items() if ms}

    chosen: list[Cube] = []

    # Essential primes: a minterm covered by exactly one prime forces it in.
    by_minterm: dict[int, list[Cube]] = defaultdict(list)
    for prime, minterms in coverage.items():
        for m in minterms:
            by_minterm[m].append(prime)
    essentials = {cubes[0] for cubes in by_minterm.values() if len(cubes) == 1}
    for prime in sorted(essentials):
        chosen.append(prime)
        remaining -= coverage[prime]

    # Greedy cover for what's left: prefer widest coverage, then fewest
    # literals, then lexical order for determinism.
    while remaining:
        best = max(
            (p for p in coverage if coverage[p] & remaining),
            key=lambda p: (len(coverage[p] & remaining), -p.literals, p),
        )
        chosen.append(best)
        remaining -= coverage[best]

    return sorted(set(chosen))


def minimize(
    cover: Cover,
    dc_set: frozenset[int] | set[int] = frozenset(),
) -> Cover:
    """Minimize a two-level cover (the espresso entry point).

    Returns a new, equivalent cover; the input is untouched (single-assignment
    discipline extends down into the tools).
    """
    on_set = cover.on_set() - set(dc_set)
    primes = prime_implicants(cover.num_inputs, on_set, dc_set)
    selected = select_cover(cover.num_inputs, on_set, primes)
    result = Cover(
        num_inputs=cover.num_inputs,
        cubes=selected,
        input_names=list(cover.input_names),
        output_name=cover.output_name,
    )
    # Safety net: never return something costlier than the input.
    if result.num_literals > cover.num_literals:
        return Cover(
            num_inputs=cover.num_inputs,
            cubes=list(cover.cubes),
            input_names=list(cover.input_names),
            output_name=cover.output_name,
        )
    return result


def minimize_minterms(
    width: int,
    on_set: frozenset[int] | set[int],
    dc_set: frozenset[int] | set[int] = frozenset(),
) -> Cover:
    """Minimize directly from an on-set (used by node-local optimization)."""
    primes = prime_implicants(width, on_set, dc_set)
    selected = select_cover(width, set(on_set), primes)
    return Cover(num_inputs=width, cubes=selected)
