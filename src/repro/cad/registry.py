"""Tool registry: the boundary between Papyrus and the CAD tools.

Papyrus only ever sees tools through this interface — a name, option strings,
ordered input payloads, expected output names, an exit status.  That is the
"open architecture" premise of the thesis: swapping one tool for a
functionally equivalent one must not disturb the layers above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ToolError, ToolUsageError


@dataclass(frozen=True)
class ToolCall:
    """One invocation request, as assembled by the task manager."""

    tool: str
    options: tuple[str, ...] = ()
    inputs: tuple[Any, ...] = ()
    input_names: tuple[str, ...] = ()
    output_names: tuple[str, ...] = ()

    def input(self, index: int = 0) -> Any:
        if index >= len(self.inputs):
            raise ToolUsageError(self.tool, f"missing input #{index}")
        return self.inputs[index]

    def has_flag(self, flag: str) -> bool:
        return flag in self.options

    def option_value(self, flag: str, default: str | None = None) -> str | None:
        """Value following the *last* occurrence of ``flag``, e.g. ``-r 2``.

        Last-wins so that user/restart option overrides appended after the
        template defaults take effect (§4.3.1's "New Options" behaviour).
        """
        value = default
        opts = self.options
        for i, opt in enumerate(opts):
            if opt == flag and i + 1 < len(opts):
                value = opts[i + 1]
        return value


@dataclass
class ToolResult:
    """Outcome of one tool invocation."""

    status: int = 0
    outputs: dict[str, Any] = field(default_factory=dict)
    log: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 0


ToolFunc = Callable[[ToolCall], ToolResult]
CostFunc = Callable[[ToolCall], float]


def _default_cost(call: ToolCall) -> float:
    size = sum(_payload_size(p) for p in call.inputs)
    return 1.0 + size / 256.0


def _payload_size(payload: Any) -> int:
    probe = getattr(payload, "size_estimate", None)
    if callable(probe):
        return int(probe())
    if isinstance(payload, str):
        return len(payload)
    return 8


@dataclass(frozen=True)
class Tool:
    """A registered CAD tool."""

    name: str
    func: ToolFunc
    description: str = ""
    interactive: bool = False
    migratable: bool = True
    cost: CostFunc = _default_cost
    man_page: str = ""

    def estimate_runtime(self, call: ToolCall) -> float:
        return max(0.05, self.cost(call))


class ToolRegistry:
    """Name → tool map plus the single entry point for running tools."""

    def __init__(self):
        self._tools: dict[str, Tool] = {}

    def register(self, tool: Tool) -> Tool:
        if tool.name in self._tools:
            raise ToolUsageError(tool.name, "tool already registered")
        self._tools[tool.name] = tool
        return tool

    def add(
        self,
        name: str,
        func: ToolFunc,
        description: str = "",
        **kwargs,
    ) -> Tool:
        return self.register(Tool(name=name, func=func, description=description, **kwargs))

    def get(self, name: str) -> Tool:
        try:
            return self._tools[name]
        except KeyError:
            raise ToolError(name, "unknown tool") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def names(self) -> list[str]:
        return sorted(self._tools)

    def run(self, call: ToolCall) -> ToolResult:
        """Execute a tool and validate its contract.

        A successful result must provide a payload for every expected output;
        tool exceptions become non-zero exit statuses (tools crash, tasks
        abort — they never take Papyrus down with them).
        """
        tool = self.get(call.tool)
        try:
            result = tool.func(call)
        except ToolError as exc:
            return ToolResult(status=getattr(exc, "status", 1) or 1, log=str(exc))
        except Exception as exc:  # tool bug → failed step, not a crash
            return ToolResult(status=2, log=f"{call.tool}: internal error: {exc}")
        if result.ok:
            missing = [n for n in call.output_names if n not in result.outputs]
            if missing:
                return ToolResult(
                    status=3,
                    log=f"{call.tool}: produced no output for {missing}",
                )
        return result


_default: ToolRegistry | None = None


def default_registry() -> ToolRegistry:
    """The registry with the full synthetic OCT suite installed (lazy)."""
    global _default
    if _default is None:
        from repro.cad import tools_logic, tools_phys

        _default = ToolRegistry()
        tools_logic.install(_default)
        tools_phys.install(_default)
    return _default
