"""Physical-level design representations.

A :class:`Layout` carries placed cells and routed nets through the physical
pipeline (placement → routing → via minimization → pads → compaction).  Each
tool returns a *new* layout with its ``stage`` advanced — single-assignment
updates reach all the way down into the substrate.  :class:`Report` holds the
textual by-products (chipstats, power reports, simulation logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Cell:
    """A placed rectangle."""

    name: str
    width: int
    height: int
    x: int = 0
    y: int = 0

    @property
    def area(self) -> int:
        return self.width * self.height

    def to_dict(self) -> dict:
        return {
            "name": self.name, "width": self.width, "height": self.height,
            "x": self.x, "y": self.y,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Cell":
        return cls(**data)


@dataclass(frozen=True)
class Net:
    """A signal net connecting named cells (pin detail abstracted away)."""

    name: str
    terminals: tuple[str, ...]
    track: int | None = None   # assigned by channel routing
    vias: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name, "terminals": list(self.terminals),
            "track": self.track, "vias": self.vias,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Net":
        return cls(
            name=data["name"], terminals=tuple(data["terminals"]),
            track=data.get("track"), vias=data.get("vias", 0),
        )


#: Ordered pipeline stages a layout moves through.
STAGES = (
    "placed", "channels-defined", "globally-routed", "detail-routed",
    "via-minimized", "padded", "compacted", "abstracted", "verified",
)


@dataclass
class Layout:
    """A physical layout at some stage of the back-end pipeline."""

    name: str
    style: str                      # "standard-cell", "pla", "macro"
    cells: list[Cell] = field(default_factory=list)
    nets: list[Net] = field(default_factory=list)
    stage: str = "placed"
    has_pads: bool = False
    tracks_used: int = 0
    meta: dict = field(default_factory=dict)   # tool-deposited facts

    def __post_init__(self):
        if self.stage not in STAGES:
            raise ValueError(f"unknown layout stage {self.stage!r}")

    # -- geometric metrics

    def bounding_box(self) -> tuple[int, int]:
        if not self.cells:
            return (0, 0)
        w = max(c.x + c.width for c in self.cells)
        h = max(c.y + c.height for c in self.cells)
        # Routing tracks sit above the cell rows.
        return (w, h + self.tracks_used)

    @property
    def area(self) -> int:
        w, h = self.bounding_box()
        return w * h

    @property
    def cell_area(self) -> int:
        return sum(c.area for c in self.cells)

    def wirelength(self) -> int:
        """Half-perimeter wirelength over placed terminals."""
        pos = {c.name: (c.x + c.width // 2, c.y + c.height // 2) for c in self.cells}
        total = 0
        for net in self.nets:
            points = [pos[t] for t in net.terminals if t in pos]
            if len(points) < 2:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    @property
    def via_count(self) -> int:
        return sum(net.vias for net in self.nets)

    def critical_delay(self) -> float:
        """Crude Elmore-flavoured delay: logic depth carried in meta plus a
        wire term proportional to the longest net span."""
        depth = self.meta.get("logic_depth", 1)
        longest = 0
        pos = {c.name: (c.x, c.y) for c in self.cells}
        for net in self.nets:
            points = [pos[t] for t in net.terminals if t in pos]
            if len(points) < 2:
                continue
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            span = (max(xs) - min(xs)) + (max(ys) - min(ys))
            longest = max(longest, span)
        return depth * 1.0 + 0.05 * longest + 0.2 * self.via_count

    def power_estimate(self) -> float:
        """Switching-capacitance proxy: cell area plus wire load."""
        return 0.01 * self.cell_area + 0.002 * self.wirelength()

    def size_estimate(self) -> int:
        return 64 + 24 * len(self.cells) + 16 * len(self.nets)

    def advanced(self, stage: str, **meta) -> "Layout":
        """A copy of this layout at a later pipeline stage."""
        new_meta = dict(self.meta)
        new_meta.update(meta)
        return Layout(
            name=self.name,
            style=self.style,
            cells=list(self.cells),
            nets=list(self.nets),
            stage=stage,
            has_pads=self.has_pads,
            tracks_used=self.tracks_used,
            meta=new_meta,
        )

    # -- persistence

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "style": self.style,
            "cells": [c.to_dict() for c in self.cells],
            "nets": [n.to_dict() for n in self.nets],
            "stage": self.stage,
            "has_pads": self.has_pads,
            "tracks_used": self.tracks_used,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Layout":
        return cls(
            name=data["name"],
            style=data["style"],
            cells=[Cell.from_dict(c) for c in data["cells"]],
            nets=[Net.from_dict(n) for n in data["nets"]],
            stage=data["stage"],
            has_pads=data["has_pads"],
            tracks_used=data["tracks_used"],
            meta=dict(data["meta"]),
        )


@dataclass(frozen=True)
class Report:
    """A textual tool by-product (chipstats, power report, simulation log)."""

    kind: str
    text: str
    values: tuple[tuple[str, float], ...] = ()

    def value(self, key: str, default: float | None = None) -> float:
        for k, v in self.values:
            if k == key:
                return v
        if default is None:
            raise KeyError(key)
        return default

    def size_estimate(self) -> int:
        return len(self.text) + 16 * len(self.values)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "text": self.text,
            "values": [list(v) for v in self.values],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Report":
        return cls(
            kind=data["kind"], text=data["text"],
            values=tuple((k, v) for k, v in data["values"]),
        )


def left_edge_tracks(intervals: list[tuple[int, int]]) -> list[int]:
    """Left-edge channel routing: assign each horizontal interval a track so
    that overlapping intervals never share one.  Returns the per-interval
    track indices (the classic greedy algorithm, optimal for this problem).
    """
    order = sorted(range(len(intervals)), key=lambda i: intervals[i])
    track_right_ends: list[int] = []
    assignment = [0] * len(intervals)
    for idx in order:
        left, right = intervals[idx]
        if right < left:
            left, right = right, left
        placed = False
        for track, end in enumerate(track_right_ends):
            if end < left:
                track_right_ends[track] = right
                assignment[idx] = track
                placed = True
                break
        if not placed:
            track_right_ends.append(right)
            assignment[idx] = len(track_right_ends) - 1
    return assignment
