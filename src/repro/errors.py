"""Exception hierarchy for the Papyrus reproduction.

Every subsystem raises a subclass of :class:`PapyrusError` so that callers can
distinguish design-management failures from programming errors.
"""

from __future__ import annotations


class PapyrusError(Exception):
    """Base class for all errors raised by this library."""


class ObjectNameError(PapyrusError):
    """Malformed ``cell:view:facet@version`` object name."""


class ObjectNotFound(PapyrusError):
    """Referenced object (or object version) does not exist."""


class VersionConflict(PapyrusError):
    """Attempt to violate single-assignment update semantics."""


class VisibilityError(PapyrusError):
    """Access to an object that is not visible from the current context."""


class ToolError(PapyrusError):
    """A CAD tool invocation failed (non-zero exit status)."""

    def __init__(self, tool: str, message: str, status: int = 1):
        super().__init__(f"{tool}: {message}")
        self.tool = tool
        self.status = status


class ToolUsageError(ToolError):
    """A CAD tool was invoked with bad options or incompatible inputs."""


class TdlError(PapyrusError):
    """Error raised while parsing or interpreting TDL/Tcl source."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class TdlBreak(Exception):
    """Internal control-flow signal for the ``break`` command."""


class TdlContinue(Exception):
    """Internal control-flow signal for the ``continue`` command."""


class TdlReturn(Exception):
    """Internal control-flow signal for the ``return`` command."""

    def __init__(self, value: str = ""):
        super().__init__(value)
        self.value = value


class TaskAborted(PapyrusError):
    """A design task was aborted and could not be resumed."""

    def __init__(self, task: str, step: str | None = None, reason: str = ""):
        detail = f"task {task!r} aborted"
        if step:
            detail += f" at step {step!r}"
        if reason:
            detail += f": {reason}"
        super().__init__(detail)
        self.task = task
        self.step = step
        self.reason = reason


class TemplateError(PapyrusError):
    """A task template is malformed (bad subtask arity, unknown resumed step...)."""


class ThreadError(PapyrusError):
    """Illegal design-thread manipulation (bad connector point, merge...)."""


class SdsError(PapyrusError):
    """Illegal synchronization-data-space operation (unregistered thread...)."""


class SchedulerError(PapyrusError):
    """The cluster simulator was asked to do something impossible."""


class MetadataError(PapyrusError):
    """Metadata inference failure (unknown tool TSD, bad attribute spec...)."""


class ReclamationError(PapyrusError):
    """Storage reclamation was asked to reclaim a live or pinned object."""


class PersistenceError(PapyrusError):
    """A saved session is inconsistent (dangling alias, missing chunk...)."""


class RestartSignal(BaseException):
    """Internal control flow: restart task interpretation after an abort.

    Derives from BaseException so that a template-level ``catch`` cannot
    swallow it; only the task manager's body loop handles it.
    """

    def __init__(self, prefix: tuple[int, ...], index: int):
        super().__init__(f"restart at {prefix}+{index}")
        self.prefix = prefix
        self.index = index
