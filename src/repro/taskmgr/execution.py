"""One task instantiation: the execution engine (§4.3).

The engine interprets a template's body with the TDL interpreter.  ``step``
commands *issue* work and return immediately (out-of-order issue); completed
steps are harvested from the cluster out of order (out-of-order execution);
readiness is tracked through the thesis's three lists:

* **Active** — steps currently running on some workstation,
* **Suspending** — steps whose data or control dependencies are unmet,
* **Result** — objects produced so far, each tagged with its creating step.

Programmable aborts follow §4.3.4 exactly: every top-level command of a
template body carries an internal ID (subtask bodies get a prefixed ID path);
aborting a step restarts interpretation right after its resumed step's
internal ID, after undoing every step with a larger internal ID.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.cad.registry import Tool, ToolCall, ToolRegistry, ToolResult
from repro.core.history import StepRecord
from repro.core.memo import DerivationCache, MemoEntry
from repro.obs import METRICS, TRACER
from repro.errors import (
    RestartSignal,
    TaskAborted,
    TdlError,
    TemplateError,
)
from repro.octdb.database import DesignDatabase
from repro.octdb.naming import parse_name
from repro.sprite.cluster import Cluster
from repro.sprite.process import SimProcess
from repro.tdl.interp import Interp
from repro.tdl.template import (
    StepSpec,
    TaskTemplate,
    TemplateLibrary,
    parse_step_args,
    parse_subtask_args,
)

if TYPE_CHECKING:
    from repro.taskmgr.attrdb import AttributeDatabase

InternalId = tuple[int, ...]

_instances = itertools.count(1)

#: Callback invoked before each step is dispatched; may return replacement /
#: additional option tokens (the GUI "New Options" box of §4.3.1).
Navigator = Callable[[StepSpec, list[str]], list[str] | None]

#: Callback invoked on task restart after an abort; models the user "trying
#: different parameters" (§3.3.2).  May mutate ``execution.option_overrides``.
RestartHook = Callable[["TaskExecution", StepSpec], None]


@dataclass
class _Slot:
    """The binding of one formal object name within one scope."""

    base: str                        # actual base name in the database
    version: int | None = None       # set once the object exists
    kind: str = "intermediate"       # input | output | intermediate | external
    producer: InternalId | None = None

    @property
    def actual(self) -> str:
        if self.version is None:
            raise TemplateError(f"{self.base!r} has no version yet")
        return f"{self.base}@{self.version}"


class _Scope:
    """A template namespace; subtask expansion creates a child scope."""

    _ids = itertools.count(1)

    def __init__(self, prefix: InternalId,
                 parent: "_Scope | None" = None):
        self.id = next(self._ids)
        self.prefix = prefix
        self.parent = parent
        self.aliases: dict[str, tuple["_Scope", str]] = {}
        self.slots: dict[str, _Slot] = {}

    def resolve(self, formal: str) -> tuple["_Scope", str]:
        scope: _Scope = self
        name = formal
        while name in scope.aliases:
            scope, name = scope.aliases[name]
        return scope, name


@dataclass
class _Pending:
    """A step that has been interpreted (it may be waiting or running)."""

    spec: StepSpec
    internal_id: InternalId
    scope: _Scope
    occurrence: int = 0                      # nth admission of this command
    issue_seq: int = -1                      # set at dispatch
    proc: SimProcess | None = None
    result: ToolResult | None = None
    record: StepRecord | None = None
    handled_failure: bool = False

    @property
    def key(self) -> tuple[InternalId, int]:
        return (self.internal_id, self.occurrence)

    @property
    def label(self) -> str:
        return f"{self.spec.name}[{'.'.join(map(str, self.internal_id))}]"


class TaskExecution:
    """State of one task instantiation (one "task manager process")."""

    def __init__(
        self,
        template: TaskTemplate,
        inputs: dict[str, str],
        outputs: dict[str, str],
        db: DesignDatabase,
        registry: ToolRegistry,
        cluster: Cluster,
        library: TemplateLibrary,
        attrdb: "AttributeDatabase | None" = None,
        navigator: Navigator | None = None,
        on_restart: RestartHook | None = None,
        max_restarts: int = 3,
        memo: DerivationCache | None = None,
    ):
        self.template = template
        self.db = db
        self.registry = registry
        self.cluster = cluster
        self.library = library
        self.attrdb = attrdb
        self.navigator = navigator
        self.on_restart = on_restart
        self.max_restarts = max_restarts
        self.memo = memo
        self.instance = next(_instances)

        self.interp = Interp()
        self.interp.register("step", self._cmd_step)
        self.interp.register("subtask", self._cmd_subtask)
        self.interp.register("abort", self._cmd_abort)
        self.interp.register("attribute", self._cmd_attribute)
        self.interp.register("task", self._cmd_nested_task_header)
        self.interp.read_traces["status"] = self._status_trace

        self.root_scope = _Scope(prefix=())
        missing = [f for f in template.inputs if f not in inputs]
        if missing:
            raise TemplateError(
                f"task {template.name!r}: missing actual inputs for {missing}"
            )
        for formal in template.inputs:
            name = parse_name(inputs[formal])
            if name.version is None:
                name = name.at(self.db.get(name).version)
            self.root_scope.slots[formal] = _Slot(
                base=name.base, version=name.version, kind="input"
            )
        for formal in template.outputs:
            base = outputs.get(formal, formal)
            self.root_scope.slots[formal] = _Slot(base=base, kind="output")

        # The three lists of §4.3.2 (Result is implicit in slot versions).
        self.active: list[_Pending] = []
        self.suspending: list[_Pending] = []
        self.completed: list[_Pending] = []     # in completion order
        #: formals promised by an interpreted step: (scope id, formal name)
        self.promised: set[tuple[int, str]] = set()
        #: declared step IDs → internal IDs, per scope prefix
        self.declared: dict[tuple[InternalId, int], InternalId] = {}
        self.completed_ok: set[InternalId] = set()
        self.created: list[str] = []            # every object version created
        self.restarts = 0
        self.aborted_reason: str | None = None
        self.option_overrides: dict[str, list[str]] = {}
        self._issue_counter = itertools.count()
        self._current_id: InternalId = (0,)
        self._last_admitted: _Pending | None = None
        #: Admission bookkeeping: re-interpretation after a restart must not
        #: re-issue steps that survived the undo (idempotent admission).
        self._admitted: dict[tuple[InternalId, int], _Pending] = {}
        self._occurrence: dict[InternalId, int] = {}
        self._scopes: dict[tuple[InternalId, int], _Scope] = {}
        #: A deferred programmable abort: (failed pending, reason).
        self._pending_restart: tuple[_Pending, str] | None = None

    # ----------------------------------------------------------------- naming

    def _slot_for(self, scope: _Scope, formal: str) -> _Slot:
        owner, name = scope.resolve(formal)
        slot = owner.slots.get(name)
        if slot is None:
            # New intermediate: unique base name across concurrent
            # instantiations (§4.3.4's PID-suffix scheme) and across scopes.
            base = f"{name}.t{self.instance}s{owner.id}"
            slot = _Slot(base=base, kind="intermediate")
            owner.slots[name] = slot
        return slot

    # ------------------------------------------------------------ TDL hooks

    def _cmd_nested_task_header(self, interp: Interp, args: list[str]) -> str:
        raise TemplateError(
            "'task' may only appear as a template's first command"
        )

    def _cmd_step(self, interp: Interp, args: list[str]) -> str:
        spec = parse_step_args(args)
        self._admit_step(spec, self._current_scope)
        return ""

    def _cmd_subtask(self, interp: Interp, args: list[str]) -> str:
        spec = parse_subtask_args(args)
        child_template = self.library.get(spec.name)
        if len(spec.inputs) != len(child_template.inputs) or \
                len(spec.outputs) != len(child_template.outputs):
            raise TemplateError(
                f"subtask {spec.name!r}: argument lists do not match the "
                f"task command in its template "
                f"({len(child_template.inputs)} in / "
                f"{len(child_template.outputs)} out expected)"
            )
        parent_scope = self._current_scope
        child_prefix = self._current_id
        occurrence = self._occurrence.get(child_prefix, 0)
        self._occurrence[child_prefix] = occurrence + 1
        # Scopes are reused across restart re-interpretations so that slots
        # bound by surviving steps stay bound.
        scope_key = (child_prefix, occurrence)
        child_scope = self._scopes.get(scope_key)
        if child_scope is None:
            child_scope = _Scope(prefix=child_prefix, parent=parent_scope)
            self._scopes[scope_key] = child_scope
            for child_formal, parent_formal in zip(
                child_template.inputs + child_template.outputs,
                spec.inputs + spec.outputs,
            ):
                child_scope.aliases[child_formal] = (parent_scope,
                                                     parent_formal)
        if spec.declared_id is not None:
            self.declared[(parent_scope.prefix, spec.declared_id)] = \
                self._current_id
        # In-line expansion (§4.2.2): interpret the child body here, with
        # internal IDs prefixed by this command's ID.
        self._run_body(child_template.body_commands, child_scope)
        return ""

    def _cmd_abort(self, interp: Interp, args: list[str]) -> str:
        if not args:
            self._abort_task("explicit abort command")
        target = args[0]
        pending = self._find_step(target)
        if pending is None:
            raise TdlError(f"abort: no step {target!r}")
        self._programmable_abort(pending, reason="explicit abort")
        return ""

    def _cmd_attribute(self, interp: Interp, args: list[str]) -> str:
        if len(args) != 2:
            raise TdlError("attribute needs: attribute Object_Name Attr_Name")
        if self.attrdb is None:
            raise TdlError("no attribute database configured")
        object_name, attr = args
        scope, formal = self._current_scope.resolve(object_name)
        slot = scope.slots.get(formal)
        if slot is None and self.db.exists(object_name):
            return self._format_attr(self.attrdb.get(object_name, attr))
        if slot is not None:
            # Synchronous semantics (§4.3.6): wait until every in-flight
            # producer of this object has completed, so the attribute is read
            # off the freshest version.
            self._drain_until(
                lambda: slot.version is not None
                and not self._in_flight_producers(scope, formal)
            )
        actual = slot.actual if slot is not None else object_name
        return self._format_attr(self.attrdb.get(actual, attr))

    @staticmethod
    def _format_attr(value) -> str:
        if isinstance(value, float) and value == int(value):
            return str(int(value))
        return str(value)

    def _in_flight_producers(self, scope: _Scope, formal: str) -> bool:
        owner, name = scope.resolve(formal)
        for pending in self.active + self.suspending:
            for out in pending.spec.outputs:
                o_scope, o_name = pending.scope.resolve(out)
                if o_scope is owner and o_name == name:
                    return True
        return False

    def _status_trace(self, interp: Interp) -> None:
        """Reading ``$status`` synchronizes with the most recently admitted
        step (in program order), then exposes *its* exit status — the
        sequential semantics the thesis assumes for TDL conditionals."""
        last = self._last_admitted
        if last is None:
            interp.set_var("status", "0")
            return
        self._drain_until(lambda: last.result is not None)
        assert last.result is not None
        interp.set_var("status", str(last.result.status))
        for pending in self.completed:
            if pending.result is not None and pending.result.status != 0:
                pending.handled_failure = True

    # --------------------------------------------------------------- stepping

    def _admit_step(self, spec: StepSpec, scope: _Scope) -> None:
        occurrence = self._occurrence.get(self._current_id, 0)
        self._occurrence[self._current_id] = occurrence + 1
        if spec.declared_id is not None:
            self.declared[(scope.prefix, spec.declared_id)] = self._current_id
        existing = self._admitted.get((self._current_id, occurrence))
        if existing is not None:
            # Re-interpretation after a restart: this step survived the undo.
            # Keep sequential $status semantics pointing at it.
            self._last_admitted = existing
            if existing.result is not None:
                self.interp.set_var("status", str(existing.result.status))
            return
        pending = _Pending(spec=spec, internal_id=self._current_id,
                           scope=scope, occurrence=occurrence)
        self._admitted[pending.key] = pending
        self._last_admitted = pending
        METRICS.counter("engine.steps_issued").inc()
        if TRACER.enabled:
            TRACER.event("step.issue", cat="step", step=pending.label,
                         task=self.template.name, instance=self.instance)
        for formal in spec.outputs:
            owner, name = scope.resolve(formal)
            self.promised.add((owner.id, name))
            self._slot_for(scope, formal)  # allocate the slot eagerly
        if self._ready(pending):
            self._dispatch(pending)
        else:
            self.suspending.append(pending)
            METRICS.counter("engine.steps_suspended").inc()
            if TRACER.enabled:
                TRACER.event("step.suspend", cat="step", step=pending.label,
                             instance=self.instance)

    def _ready(self, pending: _Pending) -> bool:
        for formal in pending.spec.inputs:
            owner, name = pending.scope.resolve(formal)
            slot = owner.slots.get(name)
            if slot is not None and slot.version is not None:
                continue
            if (owner.id, name) in self.promised:
                return False
            # Neither bound nor promised: maybe a direct database reference.
            if self.db.exists(name):
                owner.slots[name] = _Slot(
                    base=parse_name(name).base,
                    version=self.db.get(name).version,
                    kind="external",
                )
                continue
            return False
        for dep in pending.spec.control_deps:
            internal = self.declared.get((pending.scope.prefix, dep))
            if internal is None or internal not in self.completed_ok:
                return False
        return True

    def _dispatch(self, pending: _Pending) -> None:
        spec = pending.spec
        inputs: list[Any] = []
        input_actuals: list[str] = []
        actual_of: dict[str, str] = {}
        for formal in spec.inputs:
            slot = self._slot_for(pending.scope, formal)
            obj = self.db.get(slot.actual)
            inputs.append(obj.payload)
            input_actuals.append(slot.actual)
            actual_of[formal] = slot.actual
        output_bases: list[str] = []
        for formal in spec.outputs:
            slot = self._slot_for(pending.scope, formal)
            output_bases.append(slot.base)
            actual_of[formal] = slot.base
        tokens = spec.invocation.split()
        if not tokens:
            raise TemplateError(f"step {spec.name!r} has no invocation details")
        tool_name = tokens[0]
        options = [actual_of.get(tok, tok) for tok in tokens[1:]]
        if self.navigator is not None:
            chosen = self.navigator(spec, list(options))
            if chosen is not None:
                options = chosen
        options += self.option_overrides.get(spec.name, [])
        call = ToolCall(
            tool=tool_name,
            options=tuple(options),
            inputs=tuple(inputs),
            input_names=tuple(input_actuals),
            output_names=tuple(output_bases),
        )
        tool = self.registry.get(tool_name)
        if self._try_memo(pending, call, tool):
            return
        duration = tool.estimate_runtime(call)
        pending.issue_seq = next(self._issue_counter)
        pending.proc = self.cluster.submit(
            label=pending.label,
            work=duration,
            payload=(self, pending, call),
            migratable=spec.migratable and tool.migratable
            and not tool.interactive,
            priority=spec.priority,
        )
        self.active.append(pending)
        METRICS.counter("engine.steps_dispatched").inc()
        if TRACER.enabled:
            TRACER.event("step.dispatch", cat="step", step=pending.label,
                         tool=tool_name, host=pending.proc.host,
                         pid=pending.proc.pid, instance=self.instance)

    # ----------------------------------------------------- derivation cache

    def _try_memo(self, pending: _Pending, call: ToolCall,
                  tool: Tool) -> bool:
        """Consult the derivation cache; on a hit, satisfy the step from
        history and return True (no process is submitted)."""
        memo = self.memo
        if memo is None or tool.interactive:
            # Interactive tools are user-in-the-loop: their outcome is not a
            # pure function of (options, inputs), so they always execute.
            METRICS.counter("memo.bypasses").inc()
            return False
        key = memo.key_for(call.tool, call.options, call.input_names,
                           call.inputs, call.output_names)
        if key is None:
            METRICS.counter("memo.bypasses").inc()
            return False
        entry = memo.lookup(key, self.db)
        if entry is None or len(entry.outputs) != len(pending.spec.outputs):
            METRICS.counter("memo.misses").inc()
            return False
        self._satisfy_from_history(pending, call, entry)
        return True

    def _satisfy_from_history(self, pending: _Pending, call: ToolCall,
                              entry: MemoEntry) -> None:
        """Complete a step from a cached derivation (§4.3 semantics intact).

        Every output is *aliased*: a fresh version of the step's output base
        is allocated (exactly the version ``put`` would have chosen) sharing
        the committed payload by reference.  Version allocation is therefore
        identical to a cold re-execution, single assignment holds, and the
        aliases ride the normal ``created`` bookkeeping — undo and task
        abort treat a cache hit exactly like a real step.
        """
        now = self.cluster.clock.now
        outputs_created: list[str] = []
        payloads: dict[str, Any] = {}
        for formal, (cached_base, cached_name) in zip(
            pending.spec.outputs, entry.outputs
        ):
            slot = self._slot_for(pending.scope, formal)
            cached = self.db.get(cached_name)
            obj = self.db.alias(slot.base, cached_name)
            slot.version = obj.version
            self.created.append(str(obj.name))
            slot.producer = pending.internal_id
            outputs_created.append(str(obj.name))
            payloads[slot.base] = cached.payload
        pending.issue_seq = next(self._issue_counter)
        pending.result = ToolResult(status=0, outputs=payloads,
                                    log="reused from history")
        pending.record = StepRecord(
            name=pending.spec.name,
            tool=call.tool,
            options=call.options,
            inputs=call.input_names,
            outputs=tuple(outputs_created),
            host="(memo)",
            started_at=now,
            completed_at=now,
            status=0,
            reused=True,
        )
        self.completed.append(pending)
        self.completed_ok.add(pending.internal_id)
        METRICS.counter("memo.hits").inc()
        METRICS.counter("memo.saved_seconds").inc(entry.cost)
        METRICS.counter("engine.steps_completed").inc()
        if TRACER.enabled:
            TRACER.complete_span(
                f"step:{pending.spec.name}", "step", now, now,
                tool=call.tool, host="(memo)", status=0,
                step=pending.label, instance=self.instance, reused=True,
            )
            TRACER.event("step.reused", cat="step", step=pending.label,
                         tool=call.tool, saved=entry.cost,
                         outputs=outputs_created, instance=self.instance)
        self.interp.set_var("status", "0")
        self._wake_suspended()

    # ------------------------------------------------------------ completion

    def _drain_until(self, condition: Callable[[], bool]) -> None:
        while not condition():
            if not self.active:
                raise TemplateError(
                    "deadlock: waiting on steps that can never complete"
                )
            self._harvest(self.cluster.wait_any())

    def _harvest(self, done: list[SimProcess]) -> None:
        """Route completed processes to the executions that own them.

        Under concurrent instantiations (several task managers sharing the
        cluster, §3.3.4), a drain performed by one execution may surface
        completions belonging to another; each is absorbed by its owner.
        """
        for proc in done:
            payload = proc.payload
            if payload is None or len(payload) != 3:
                continue
            owner, pending, call = payload
            owner._absorb(pending, call, proc)
        if self._pending_restart is not None:
            pending, reason = self._pending_restart
            self._pending_restart = None
            self._programmable_abort(pending, reason)

    def _absorb(self, pending: "_Pending", call: ToolCall,
                proc: SimProcess) -> None:
        if pending not in self.active:
            return
        self.active.remove(pending)
        result = self.registry.run(call)
        pending.result = result
        started = proc.started_at
        finished = proc.finished_at or self.cluster.clock.now
        outputs_created: list[str] = []
        if result.ok:
            for formal in pending.spec.outputs:
                slot = self._slot_for(pending.scope, formal)
                obj = self.db.put(
                    slot.base,
                    result.outputs[slot.base],
                    creator=pending.spec.tool,
                )
                slot.version = obj.version
                slot.producer = pending.internal_id
                self.created.append(str(obj.name))
                outputs_created.append(str(obj.name))
            self.completed_ok.add(pending.internal_id)
        pending.record = StepRecord(
            name=pending.spec.name,
            tool=call.tool,
            options=call.options,
            inputs=call.input_names,
            outputs=tuple(outputs_created),
            host=proc.host,
            started_at=started,
            completed_at=finished,
            status=result.status,
        )
        self.completed.append(pending)
        METRICS.counter("engine.steps_completed").inc()
        METRICS.histogram("engine.step_seconds").observe(finished - started)
        METRICS.histogram("step.latency", tool=call.tool).observe(
            finished - started)
        if not result.ok:
            METRICS.counter("engine.steps_failed").inc()
        if TRACER.enabled:
            TRACER.complete_span(
                f"step:{pending.spec.name}", "step", started, finished,
                tool=call.tool, host=proc.host, pid=proc.pid,
                status=result.status, step=pending.label,
                instance=self.instance,
            )
            TRACER.event("step.complete", cat="step", step=pending.label,
                         status=result.status, host=proc.host,
                         pid=proc.pid, instance=self.instance)
        self.interp.set_var("status", str(result.status))
        if not result.ok:
            self._handle_failure(pending)
        else:
            self._wake_suspended()

    def _wake_suspended(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for pending in list(self.suspending):
                # A dispatch may hit the derivation cache and complete
                # synchronously, recursing into this method — the recursive
                # call may already have drained entries of our snapshot.
                if pending not in self.suspending:
                    continue
                if self._ready(pending):
                    self.suspending.remove(pending)
                    self._dispatch(pending)
                    progressed = True

    # ------------------------------------------------------------------ abort

    def _find_step(self, target: str) -> _Pending | None:
        everywhere = self.completed + self.active + self.suspending
        try:
            declared = int(target)
        except ValueError:
            declared = None
        for pending in everywhere:
            if pending.spec.name == target:
                return pending
            if declared is not None and pending.spec.declared_id == declared:
                return pending
        return None

    def _handle_failure(self, pending: _Pending) -> None:
        if pending.spec.resumed_step is not None:
            # A programmed abort point: restart at the next safe moment —
            # the flag is consumed by this execution's own drive loop, so a
            # concurrent sibling's drain never unwinds our stack (§4.3.4).
            self._pending_restart = (
                pending, f"step failed: {pending.result.log}"
            )
        # Otherwise the failure is deferred: the template may branch on
        # $status; unhandled failures are dealt with at end of body.

    def _resumed_internal_id(self, pending: _Pending) -> InternalId | None:
        """Map a step's resumed-step spec to an internal ID (None = scratch)."""
        resumed = pending.spec.resumed_step
        if resumed in (None, 0):
            return None
        if resumed == "latest":
            done = [p for p in self.completed
                    if p.result is not None and p.result.ok]
            if not done:
                return None
            return done[-1].internal_id
        internal = self.declared.get((pending.scope.prefix, int(resumed)))
        if internal is None:
            raise TemplateError(
                f"step {pending.spec.name!r}: resumed step {resumed} is not "
                "a declared top-level step of its template"
            )
        if not internal < pending.internal_id:
            raise TemplateError(
                f"step {pending.spec.name!r}: resumed step {resumed} is not "
                "a logical predecessor"
            )
        return internal

    def _programmable_abort(self, pending: _Pending, reason: str) -> None:
        """Restart the task from the failed step's resumed task state.

        The §4.3.4 rule: undo every step with a larger internal ID than the
        resumed step, then re-interpret the template.  Re-interpretation
        always starts at the top; surviving steps are skipped by idempotent
        admission, which handles resumed steps buried in subtasks and loops
        uniformly.
        """
        if self.restarts >= self.max_restarts:
            self._abort_task(
                f"{reason} (gave up after {self.restarts} restarts)"
            )
        self.restarts += 1
        resumed = self._resumed_internal_id(pending)
        METRICS.counter("engine.restarts").inc()
        if TRACER.enabled:
            TRACER.event("task.abort", cat="task", step=pending.label,
                         reason=reason, restart=self.restarts,
                         instance=self.instance)
        if self.on_restart is not None:
            self.on_restart(self, pending.spec)
        self._undo_after(resumed if resumed is not None else ())
        raise RestartSignal(prefix=(), index=-1)

    def _undo_after(self, internal_id: InternalId) -> None:
        """Undo every step whose internal ID is larger than ``internal_id``
        (the §4.3.4 restart rule); () undoes everything."""

        def later(candidate: InternalId) -> bool:
            return candidate > internal_id

        for pending in [p for p in self.active if later(p.internal_id)]:
            if pending.proc is not None:
                self.cluster.kill(pending.proc)
            self.active.remove(pending)
        self.suspending = [
            p for p in self.suspending if not later(p.internal_id)
        ]
        for pending in [p for p in self.completed if later(p.internal_id)]:
            METRICS.counter("engine.steps_undone").inc()
            if TRACER.enabled:
                TRACER.event("step.undo", cat="step", step=pending.label,
                             instance=self.instance)
            self.completed.remove(pending)
            self.completed_ok.discard(pending.internal_id)
            for formal in pending.spec.outputs:
                owner, name = pending.scope.resolve(formal)
                slot = owner.slots.get(name)
                if slot is not None and slot.version is not None:
                    actual = slot.actual
                    if self.db.exists(actual) and not self.db.is_deleted(actual):
                        self.db.delete(actual)
                    if actual in self.created:
                        self.created.remove(actual)
                    slot.version = None
                    slot.producer = None
                self.promised.add((owner.id, name))
        # Undone steps must be re-admitted on re-interpretation.
        for key in [k for k, p in self._admitted.items()
                    if later(p.internal_id)]:
            del self._admitted[key]
        self._last_admitted = None

    def _abort_task(self, reason: str) -> None:
        """Remove every side effect and terminate the instantiation."""
        for pending in self.active:
            if pending.proc is not None:
                self.cluster.kill(pending.proc)
        self.active.clear()
        self.suspending.clear()
        for name in self.created:
            if self.db.exists(name) and not self.db.is_deleted(name):
                self.db.delete(name)
        self.aborted_reason = reason
        METRICS.counter("engine.tasks_aborted").inc()
        if TRACER.enabled:
            TRACER.event("task.aborted", cat="task", task=self.template.name,
                         reason=reason, instance=self.instance)
        raise TaskAborted(self.template.name, reason=reason)

    # -------------------------------------------------------------------- run

    @property
    def _current_scope(self) -> _Scope:
        return self._scope_stack[-1]

    def run(self) -> None:
        """Interpret the template body to completion (or TaskAborted)."""
        with TRACER.span(f"task:{self.template.name}", cat="task",
                         instance=self.instance):
            while True:
                try:
                    self._interpret()
                    self._finish()
                    METRICS.counter("engine.tasks_completed").inc()
                    return
                except RestartSignal:
                    continue

    def _interpret(self) -> None:
        """(Re-)interpret the whole template body from the top.

        Variables are reset and command-occurrence counters cleared; steps
        that survived the last undo are skipped by idempotent admission, so
        re-interpretation lands exactly on the resumed task state.
        """
        self.interp.reset_variables()
        self._occurrence.clear()
        self._scope_stack = [self.root_scope]
        self._run_body(self.template.body_commands, self.root_scope)

    def _run_body(self, commands: tuple[str, ...], scope: _Scope) -> None:
        prefix = scope.prefix
        self._scope_stack.append(scope)
        try:
            for index, command in enumerate(commands):
                self._current_id = prefix + (index,)
                self.interp.eval_command(command)
                self._current_id = prefix + (index,)
        finally:
            self._scope_stack.pop()

    def _finish(self) -> None:
        """End-of-body: drain the cluster, then settle failures and outputs."""
        while True:
            if self._pending_restart is not None:
                pending, reason = self._pending_restart
                self._pending_restart = None
                self._programmable_abort(pending, reason)
            while self.active:
                self._harvest(self.cluster.wait_any())
            unhandled = [
                p for p in self.completed
                if p.result is not None and p.result.status != 0
                and not p.handled_failure and p.spec.resumed_step is None
            ]
            if unhandled:
                failed = unhandled[-1]
                if self.restarts >= self.max_restarts:
                    self._abort_task(
                        f"step {failed.spec.name!r} failed and was never "
                        f"handled: {failed.result.log}"
                    )
                # Compulsory abort with the default resumed state (scratch).
                self.restarts += 1
                if self.on_restart is not None:
                    self.on_restart(self, failed.spec)
                self._undo_after(())
                raise RestartSignal(prefix=(), index=-1)
            if self.suspending:
                names = [p.spec.name for p in self.suspending]
                self._abort_task(
                    f"steps never became ready: {names} (missing inputs or "
                    "failed control dependencies)"
                )
            break
        missing = [
            formal for formal in self.template.outputs
            if self.root_scope.slots[formal].version is None
        ]
        if missing:
            self._abort_task(f"task outputs never produced: {missing}")

    # ---------------------------------------------------------------- results

    def task_inputs(self) -> tuple[str, ...]:
        return tuple(
            self.root_scope.slots[f].actual for f in self.template.inputs
        )

    def task_outputs(self) -> tuple[str, ...]:
        return tuple(
            self.root_scope.slots[f].actual for f in self.template.outputs
        )

    def step_records(self) -> tuple[StepRecord, ...]:
        return tuple(
            p.record for p in self.completed if p.record is not None
        )

    def intermediate_names(self) -> list[str]:
        outputs = set(self.task_outputs())
        return [name for name in self.created if name not in outputs]
