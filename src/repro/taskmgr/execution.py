"""One task instantiation: the execution engine (§4.3).

The engine interprets a template's body with the TDL interpreter.  ``step``
commands *issue* work and return immediately (out-of-order issue); completed
steps are harvested from the cluster out of order (out-of-order execution).

Readiness is tracked on an explicit dependency graph built as the body is
interpreted: every admitted step becomes a node with PENDING / READY /
RUNNING / SUCCESS / FAILED / SKIPPED states, its unmet data and control
dependencies become typed wait keys, and completions fire exactly the
waiters registered on the keys they satisfy — a completion wakes only its
dependents, never a scan of everything suspended.  The thesis's three lists
(§4.3.2) survive as views of the node states:

* **Active** — nodes in RUNNING (a process on some workstation),
* **Suspending** — nodes in PENDING (data or control dependencies unmet),
* **Result** — objects produced so far, each tagged with its creating node.

The original list-walking scheduler (re-scan Suspending on every completion)
is retained as ``scheduler="list"`` so the two engines can be compared
step-record-for-step-record; see ``tests/test_engine_dag.py``.

Programmable aborts follow §4.3.4: every top-level command of a template
body carries an internal ID (subtask bodies get a prefixed ID path);
aborting a step restarts interpretation from the resumed step's task state
by cancelling the graph suffix — every node with a larger internal ID is
killed (RUNNING), dropped (PENDING) or undone (SUCCESS/FAILED) and marked
SKIPPED — then re-interpreting the template with idempotent admission.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable

from repro.cad.registry import Tool, ToolCall, ToolRegistry, ToolResult
from repro.core.history import StepRecord
from repro.core.memo import DerivationCache, MemoEntry
from repro.obs import METRICS, TRACER
from repro.obs.runtime import PROFILER
from repro.errors import (
    RestartSignal,
    TaskAborted,
    TdlError,
    TemplateError,
)
from repro.octdb.database import DesignDatabase
from repro.octdb.naming import parse_name
from repro.sprite.cluster import Cluster
from repro.sprite.process import SimProcess
from repro.tdl.interp import Interp
from repro.tdl.template import (
    StepSpec,
    TaskTemplate,
    TemplateLibrary,
    parse_step_args,
    parse_subtask_args,
)

if TYPE_CHECKING:
    from repro.taskmgr.attrdb import AttributeDatabase

InternalId = tuple[int, ...]

#: A typed dependency-wait key.  ``("slot", scope_id, name)`` fires when the
#: named slot binds a version; ``("done", internal_id)`` fires when that
#: command completes successfully; ``("decl", prefix, id)`` fires when a
#: forward-referenced declared ID is registered (and is then translated into
#: the corresponding done-key).
DepKey = tuple

_instances = itertools.count(1)

#: Callback invoked before each step is dispatched; may return replacement /
#: additional option tokens (the GUI "New Options" box of §4.3.1).
Navigator = Callable[[StepSpec, list[str]], list[str] | None]

#: Callback invoked on task restart after an abort; models the user "trying
#: different parameters" (§3.3.2).  May mutate ``execution.option_overrides``.
RestartHook = Callable[["TaskExecution", StepSpec], None]


class NodeState(Enum):
    """Lifecycle of one step node in the dependency graph."""

    PENDING = "pending"      # admitted, dependencies unmet (in Suspending)
    READY = "ready"          # dependencies met, queued for dispatch
    RUNNING = "running"      # a process on the cluster (in Active)
    SUCCESS = "success"      # completed with exit status 0
    FAILED = "failed"        # completed with a non-zero exit status
    SKIPPED = "skipped"      # cancelled/undone by subtree cancellation


@dataclass
class _Slot:
    """The binding of one formal object name within one scope."""

    base: str                        # actual base name in the database
    version: int | None = None       # set once the object exists
    kind: str = "intermediate"       # input | output | intermediate | external
    producer: InternalId | None = None

    @property
    def actual(self) -> str:
        if self.version is None:
            raise TemplateError(f"{self.base!r} has no version yet")
        return f"{self.base}@{self.version}"


class _Scope:
    """A template namespace; subtask expansion creates a child scope."""

    _ids = itertools.count(1)

    def __init__(self, prefix: InternalId,
                 parent: "_Scope | None" = None):
        self.id = next(self._ids)
        self.prefix = prefix
        self.parent = parent
        self.aliases: dict[str, tuple["_Scope", str]] = {}
        self.slots: dict[str, _Slot] = {}

    def resolve(self, formal: str) -> tuple["_Scope", str]:
        scope: _Scope = self
        name = formal
        while name in scope.aliases:
            scope, name = scope.aliases[name]
        return scope, name


@dataclass
class _Pending:
    """A step node: admitted, possibly waiting, running or completed."""

    spec: StepSpec
    internal_id: InternalId
    scope: _Scope
    occurrence: int = 0                      # nth admission of this command
    admit_seq: int = -1                      # global admission order
    state: NodeState = NodeState.PENDING
    unmet: set = field(default_factory=set)  # outstanding DepKeys
    issue_seq: int = -1                      # set at dispatch
    proc: SimProcess | None = None
    result: ToolResult | None = None
    record: StepRecord | None = None
    handled_failure: bool = False

    @property
    def key(self) -> tuple[InternalId, int]:
        return (self.internal_id, self.occurrence)

    @property
    def label(self) -> str:
        return f"{self.spec.name}[{'.'.join(map(str, self.internal_id))}]"


class TaskExecution:
    """State of one task instantiation (one "task manager process")."""

    def __init__(
        self,
        template: TaskTemplate,
        inputs: dict[str, str],
        outputs: dict[str, str],
        db: DesignDatabase,
        registry: ToolRegistry,
        cluster: Cluster,
        library: TemplateLibrary,
        attrdb: "AttributeDatabase | None" = None,
        navigator: Navigator | None = None,
        on_restart: RestartHook | None = None,
        max_restarts: int = 3,
        memo: DerivationCache | None = None,
        scheduler: str = "dag",
    ):
        if scheduler not in ("dag", "list"):
            raise TemplateError(f"unknown scheduler {scheduler!r}")
        self.template = template
        self.db = db
        self.registry = registry
        self.cluster = cluster
        self.library = library
        self.attrdb = attrdb
        self.navigator = navigator
        self.on_restart = on_restart
        self.max_restarts = max_restarts
        self.memo = memo
        self.scheduler = scheduler
        self.instance = next(_instances)

        self.interp = Interp()
        self.interp.register("step", self._cmd_step)
        self.interp.register("subtask", self._cmd_subtask)
        self.interp.register("abort", self._cmd_abort)
        self.interp.register("attribute", self._cmd_attribute)
        self.interp.register("task", self._cmd_nested_task_header)
        self.interp.read_traces["status"] = self._status_trace

        self.root_scope = _Scope(prefix=())
        missing = [f for f in template.inputs if f not in inputs]
        if missing:
            raise TemplateError(
                f"task {template.name!r}: missing actual inputs for {missing}"
            )
        for formal in template.inputs:
            name = parse_name(inputs[formal])
            if name.version is None:
                name = name.at(self.db.get(name).version)
            self.root_scope.slots[formal] = _Slot(
                base=name.base, version=name.version, kind="input"
            )
        for formal in template.outputs:
            base = outputs.get(formal, formal)
            self.root_scope.slots[formal] = _Slot(base=base, kind="output")

        # The three lists of §4.3.2, stored as admission-ordered node maps
        # keyed by (internal id, occurrence) so membership updates are O(1)
        # (Result is implicit in slot versions).
        self.active: dict[tuple[InternalId, int], _Pending] = {}
        self.suspending: dict[tuple[InternalId, int], _Pending] = {}
        self.completed: list[_Pending] = []     # in completion order
        #: formals promised by an interpreted step: (scope id, formal name)
        self.promised: set[tuple[int, str]] = set()
        #: declared step IDs → internal IDs, per scope prefix
        self.declared: dict[tuple[InternalId, int], InternalId] = {}
        self.completed_ok: set[InternalId] = set()
        self.created: list[str] = []            # every object version created
        self.restarts = 0
        self.aborted_reason: str | None = None
        self.option_overrides: dict[str, list[str]] = {}
        self._issue_counter = itertools.count()
        self._admit_counter = itertools.count()
        self._current_id: InternalId = (0,)
        self._last_admitted: _Pending | None = None
        #: Admission bookkeeping: re-interpretation after a restart must not
        #: re-issue steps that survived the undo (idempotent admission).
        self._admitted: dict[tuple[InternalId, int], _Pending] = {}
        self._occurrence: dict[InternalId, int] = {}
        self._scopes: dict[tuple[InternalId, int], _Scope] = {}
        #: Latest live admission per internal ID (abort-target resolution).
        self._by_internal: dict[InternalId, _Pending] = {}
        #: Dependency graph edges: DepKey → nodes waiting on it.  These are
        #: the per-node dependent lists — a completion fires only the keys
        #: it satisfies, so wakeup cost is proportional to the dependents.
        self._waiters: dict[DepKey, list[_Pending]] = {}
        #: The ready queue, ordered by admission so dispatch order matches
        #: the list engine's suspend-order scan exactly.
        self._ready_heap: list[tuple[int, _Pending]] = []
        self._pumping = False
        #: Slot keys that may be satisfied by an object appearing directly
        #: in the database (no in-template producer promised them yet);
        #: rechecked on each completion, mirroring the list engine's rescan.
        self._external_waits: dict[DepKey, tuple[_Scope, str]] = {}
        #: Deferred programmable aborts, one per failed programmed-abort
        #: step: (failed node, reason).  A queue, not a single slot — two
        #: failures harvested in one drain must both be honoured (§4.3.4).
        self._pending_restarts: list[tuple[_Pending, str]] = []

    # ----------------------------------------------------------------- naming

    def _slot_for(self, scope: _Scope, formal: str) -> _Slot:
        owner, name = scope.resolve(formal)
        slot = owner.slots.get(name)
        if slot is None:
            # New intermediate: unique base name across concurrent
            # instantiations (§4.3.4's PID-suffix scheme) and across scopes.
            base = f"{name}.t{self.instance}s{owner.id}"
            slot = _Slot(base=base, kind="intermediate")
            owner.slots[name] = slot
        return slot

    # ------------------------------------------------------------ TDL hooks

    def _cmd_nested_task_header(self, interp: Interp, args: list[str]) -> str:
        raise TemplateError(
            "'task' may only appear as a template's first command"
        )

    def _cmd_step(self, interp: Interp, args: list[str]) -> str:
        spec = parse_step_args(args)
        self._admit_step(spec, self._current_scope)
        return ""

    def _cmd_subtask(self, interp: Interp, args: list[str]) -> str:
        spec = parse_subtask_args(args)
        child_template = self.library.get(spec.name)
        if len(spec.inputs) != len(child_template.inputs) or \
                len(spec.outputs) != len(child_template.outputs):
            raise TemplateError(
                f"subtask {spec.name!r}: argument lists do not match the "
                f"task command in its template "
                f"({len(child_template.inputs)} in / "
                f"{len(child_template.outputs)} out expected)"
            )
        parent_scope = self._current_scope
        child_prefix = self._current_id
        occurrence = self._occurrence.get(child_prefix, 0)
        self._occurrence[child_prefix] = occurrence + 1
        # Scopes are reused across restart re-interpretations so that slots
        # bound by surviving steps stay bound.
        scope_key = (child_prefix, occurrence)
        child_scope = self._scopes.get(scope_key)
        if child_scope is None:
            child_scope = _Scope(prefix=child_prefix, parent=parent_scope)
            self._scopes[scope_key] = child_scope
            for child_formal, parent_formal in zip(
                child_template.inputs + child_template.outputs,
                spec.inputs + spec.outputs,
            ):
                child_scope.aliases[child_formal] = (parent_scope,
                                                     parent_formal)
        if spec.declared_id is not None:
            self._register_declared(parent_scope.prefix, spec.declared_id,
                                    self._current_id)
        # In-line expansion (§4.2.2): interpret the child body here, with
        # internal IDs prefixed by this command's ID.
        self._run_body(child_template.body_commands, child_scope)
        return ""

    def _cmd_abort(self, interp: Interp, args: list[str]) -> str:
        if not args:
            self._abort_task("explicit abort command")
        target = args[0]
        pending = self._find_step(target)
        if pending is None:
            raise TdlError(f"abort: no step {target!r}")
        self._programmable_abort(pending, reason="explicit abort")
        return ""

    def _cmd_attribute(self, interp: Interp, args: list[str]) -> str:
        if len(args) != 2:
            raise TdlError("attribute needs: attribute Object_Name Attr_Name")
        if self.attrdb is None:
            raise TdlError("no attribute database configured")
        object_name, attr = args
        scope, formal = self._current_scope.resolve(object_name)
        slot = scope.slots.get(formal)
        if slot is None and self.db.exists(object_name):
            return self._format_attr(self.attrdb.get(object_name, attr))
        if slot is not None:
            # Synchronous semantics (§4.3.6): wait until every in-flight
            # producer of this object has completed, so the attribute is read
            # off the freshest version.
            self._drain_until(
                lambda: slot.version is not None
                and not self._in_flight_producers(scope, formal)
            )
        actual = slot.actual if slot is not None else object_name
        return self._format_attr(self.attrdb.get(actual, attr))

    @staticmethod
    def _format_attr(value) -> str:
        if isinstance(value, float) and value == int(value):
            return str(int(value))
        return str(value)

    def _in_flight_producers(self, scope: _Scope, formal: str) -> bool:
        owner, name = scope.resolve(formal)
        for pending in list(self.active.values()) + \
                list(self.suspending.values()):
            for out in pending.spec.outputs:
                o_scope, o_name = pending.scope.resolve(out)
                if o_scope is owner and o_name == name:
                    return True
        return False

    def _status_trace(self, interp: Interp) -> None:
        """Reading ``$status`` synchronizes with the most recently admitted
        step (in program order), then exposes *its* exit status — the
        sequential semantics the thesis assumes for TDL conditionals."""
        last = self._last_admitted
        if last is None:
            interp.set_var("status", "0")
            return
        self._drain_until(lambda: last.result is not None)
        assert last.result is not None
        interp.set_var("status", str(last.result.status))
        for pending in self.completed:
            if pending.result is not None and pending.result.status != 0:
                pending.handled_failure = True

    # --------------------------------------------------------------- stepping

    def _register_declared(self, prefix: InternalId, declared_id: int,
                           internal_id: InternalId) -> None:
        """Record a declared step ID and resolve forward references to it."""
        self.declared[(prefix, declared_id)] = internal_id
        key: DepKey = ("decl", prefix, declared_id)
        waiters = self._waiters.pop(key, None)
        if not waiters:
            return
        # Forward control dependency: translate the declaration wait into a
        # completion wait on the now-known internal ID.
        done_key: DepKey = ("done", internal_id)
        for node in waiters:
            if node.state is not NodeState.PENDING or key not in node.unmet:
                continue
            if internal_id in self.completed_ok:
                self._satisfy(node, key)
            else:
                node.unmet.discard(key)
                node.unmet.add(done_key)
                self._waiters.setdefault(done_key, []).append(node)
        self._pump()

    def _admit_step(self, spec: StepSpec, scope: _Scope) -> None:
        occurrence = self._occurrence.get(self._current_id, 0)
        self._occurrence[self._current_id] = occurrence + 1
        if spec.declared_id is not None:
            self._register_declared(scope.prefix, spec.declared_id,
                                    self._current_id)
        existing = self._admitted.get((self._current_id, occurrence))
        if existing is not None:
            # Re-interpretation after a restart: this step survived the undo.
            # Keep sequential $status semantics pointing at it.
            self._last_admitted = existing
            if existing.result is not None:
                self.interp.set_var("status", str(existing.result.status))
            return
        pending = _Pending(spec=spec, internal_id=self._current_id,
                           scope=scope, occurrence=occurrence,
                           admit_seq=next(self._admit_counter))
        self._admitted[pending.key] = pending
        self._by_internal[pending.internal_id] = pending
        self._last_admitted = pending
        METRICS.counter("engine.steps_issued").inc()
        if TRACER.enabled:
            TRACER.event("step.issue", cat="step", step=pending.label,
                         task=self.template.name, instance=self.instance)
        for formal in spec.outputs:
            owner, name = scope.resolve(formal)
            self.promised.add((owner.id, name))
            # A promised slot has an in-template producer: it is no longer a
            # candidate for direct-database satisfaction.
            self._external_waits.pop(("slot", owner.id, name), None)
            self._slot_for(scope, formal)  # allocate the slot eagerly
        if self.scheduler == "dag":
            unmet = self._collect_unmet(pending)
            if unmet:
                pending.unmet = unmet
                for dep_key in unmet:
                    self._waiters.setdefault(dep_key, []).append(pending)
                self._suspend(pending)
            else:
                self._enqueue_ready(pending)
            self._pump()
        else:
            if self._ready(pending):
                self._dispatch(pending)
            else:
                self._suspend(pending)

    def _suspend(self, pending: _Pending) -> None:
        pending.state = NodeState.PENDING
        self.suspending[pending.key] = pending
        METRICS.counter("engine.steps_suspended").inc()
        if TRACER.enabled:
            TRACER.event("step.suspend", cat="step", step=pending.label,
                         instance=self.instance)

    # ------------------------------------------------- DAG readiness tracking

    def _collect_unmet(self, pending: _Pending) -> set:
        """Compute the node's dependency edges (its unmet wait keys)."""
        unmet: set = set()
        scope = pending.scope
        for formal in pending.spec.inputs:
            owner, name = scope.resolve(formal)
            slot = owner.slots.get(name)
            if slot is not None and slot.version is not None:
                continue
            dep_key: DepKey = ("slot", owner.id, name)
            if (owner.id, name) not in self.promised:
                # Neither bound nor promised: maybe a direct database
                # reference — bind it now, or watch for it to appear.
                if self.db.exists(name):
                    owner.slots[name] = _Slot(
                        base=parse_name(name).base,
                        version=self.db.get(name).version,
                        kind="external",
                    )
                    continue
                self._external_waits[dep_key] = (owner, name)
            unmet.add(dep_key)
        for dep in pending.spec.control_deps:
            internal = self.declared.get((scope.prefix, dep))
            if internal is None:
                unmet.add(("decl", scope.prefix, dep))
            elif internal not in self.completed_ok:
                unmet.add(("done", internal))
        return unmet

    def _satisfy(self, node: _Pending, dep_key: DepKey) -> None:
        node.unmet.discard(dep_key)
        if not node.unmet and node.state is NodeState.PENDING:
            self.suspending.pop(node.key, None)
            self._enqueue_ready(node)

    def _enqueue_ready(self, node: _Pending) -> None:
        node.state = NodeState.READY
        heapq.heappush(self._ready_heap, (node.admit_seq, node))

    def _pump(self) -> None:
        """Dispatch every ready node, oldest admission first.

        Re-entrant calls (a dispatch hitting the derivation cache completes
        synchronously and fires more keys) just enqueue; the outermost pump
        drains everything.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            with PROFILER.section("engine.pump"):
                while self._ready_heap:
                    _, node = heapq.heappop(self._ready_heap)
                    if node.state is not NodeState.READY:
                        continue
                    self._dispatch(node)
        finally:
            self._pumping = False

    def _fire_key(self, dep_key: DepKey) -> None:
        """Wake the dependents registered on one satisfied dependency."""
        waiters = self._waiters.pop(dep_key, None)
        if not waiters:
            return
        with PROFILER.section("engine.wake"):
            METRICS.counter("engine.wake_checks").inc(len(waiters))
            for node in waiters:
                if node.state is not NodeState.PENDING:
                    continue
                self._satisfy(node, dep_key)

    def _recheck_external(self) -> None:
        """Re-probe dangling direct-database references (rare).

        Mirrors the list engine's behaviour: an input that is neither bound
        nor promised may be satisfied by an object another concurrent
        instantiation commits under exactly that name.
        """
        if not self._external_waits:
            return
        for dep_key, (owner, name) in list(self._external_waits.items()):
            if dep_key not in self._waiters:
                del self._external_waits[dep_key]
                continue
            if self.db.exists(name):
                owner.slots[name] = _Slot(
                    base=parse_name(name).base,
                    version=self.db.get(name).version,
                    kind="external",
                )
                del self._external_waits[dep_key]
                self._fire_key(dep_key)

    def _on_step_success(self, pending: _Pending) -> None:
        """Wake exactly the dependents of one successful completion."""
        if self.scheduler != "dag":
            self._wake_suspended()
            return
        self._fire_key(("done", pending.internal_id))
        for formal in pending.spec.outputs:
            owner, name = pending.scope.resolve(formal)
            self._fire_key(("slot", owner.id, name))
        self._recheck_external()
        self._pump()

    # ------------------------------------------------ list-engine readiness

    def _ready(self, pending: _Pending) -> bool:
        for formal in pending.spec.inputs:
            owner, name = pending.scope.resolve(formal)
            slot = owner.slots.get(name)
            if slot is not None and slot.version is not None:
                continue
            if (owner.id, name) in self.promised:
                return False
            # Neither bound nor promised: maybe a direct database reference.
            if self.db.exists(name):
                owner.slots[name] = _Slot(
                    base=parse_name(name).base,
                    version=self.db.get(name).version,
                    kind="external",
                )
                continue
            return False
        for dep in pending.spec.control_deps:
            internal = self.declared.get((pending.scope.prefix, dep))
            if internal is None or internal not in self.completed_ok:
                return False
        return True

    def _wake_suspended(self) -> None:
        """The list engine's wake path: rescan Suspending until quiescent."""
        with PROFILER.section("engine.wake"):
            progressed = True
            while progressed:
                progressed = False
                checked = 0
                for pending in list(self.suspending.values()):
                    # A dispatch may hit the derivation cache and complete
                    # synchronously, recursing into this method — the
                    # recursive call may already have drained entries of our
                    # snapshot.
                    if self.suspending.get(pending.key) is not pending:
                        continue
                    checked += 1
                    if self._ready(pending):
                        del self.suspending[pending.key]
                        self._dispatch(pending)
                        progressed = True
                if checked:
                    METRICS.counter("engine.wake_checks").inc(checked)

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, pending: _Pending) -> None:
        spec = pending.spec
        inputs: list[Any] = []
        input_actuals: list[str] = []
        actual_of: dict[str, str] = {}
        for formal in spec.inputs:
            slot = self._slot_for(pending.scope, formal)
            obj = self.db.get(slot.actual)
            inputs.append(obj.payload)
            input_actuals.append(slot.actual)
            actual_of[formal] = slot.actual
        output_bases: list[str] = []
        for formal in spec.outputs:
            slot = self._slot_for(pending.scope, formal)
            output_bases.append(slot.base)
            actual_of[formal] = slot.base
        tokens = spec.invocation.split()
        if not tokens:
            raise TemplateError(f"step {spec.name!r} has no invocation details")
        tool_name = tokens[0]
        options = [actual_of.get(tok, tok) for tok in tokens[1:]]
        if self.navigator is not None:
            chosen = self.navigator(spec, list(options))
            if chosen is not None:
                options = chosen
        options += self.option_overrides.get(spec.name, [])
        call = ToolCall(
            tool=tool_name,
            options=tuple(options),
            inputs=tuple(inputs),
            input_names=tuple(input_actuals),
            output_names=tuple(output_bases),
        )
        tool = self.registry.get(tool_name)
        if self._try_memo(pending, call, tool):
            return
        duration = tool.estimate_runtime(call)
        pending.issue_seq = next(self._issue_counter)
        pending.proc = self.cluster.submit(
            label=pending.label,
            work=duration,
            payload=(self, pending, call),
            migratable=spec.migratable and tool.migratable
            and not tool.interactive,
            priority=spec.priority,
        )
        pending.state = NodeState.RUNNING
        self.active[pending.key] = pending
        METRICS.counter("engine.steps_dispatched").inc()
        if TRACER.enabled:
            TRACER.event("step.dispatch", cat="step", step=pending.label,
                         tool=tool_name, host=pending.proc.host,
                         pid=pending.proc.pid, instance=self.instance)

    # ----------------------------------------------------- derivation cache

    def _try_memo(self, pending: _Pending, call: ToolCall,
                  tool: Tool) -> bool:
        """Consult the derivation cache; on a hit, satisfy the step from
        history and return True (no process is submitted)."""
        memo = self.memo
        if memo is None or tool.interactive:
            # Interactive tools are user-in-the-loop: their outcome is not a
            # pure function of (options, inputs), so they always execute.
            METRICS.counter("memo.bypasses").inc()
            return False
        key = memo.key_for(call.tool, call.options, call.input_names,
                           call.inputs, call.output_names)
        if key is None:
            METRICS.counter("memo.bypasses").inc()
            return False
        entry = memo.lookup(key, self.db)
        if entry is None or len(entry.outputs) != len(pending.spec.outputs):
            METRICS.counter("memo.misses").inc()
            return False
        self._satisfy_from_history(pending, call, entry)
        return True

    def _satisfy_from_history(self, pending: _Pending, call: ToolCall,
                              entry: MemoEntry) -> None:
        """Complete a step from a cached derivation (§4.3 semantics intact).

        Every output is *aliased*: a fresh version of the step's output base
        is allocated (exactly the version ``put`` would have chosen) sharing
        the committed payload by reference.  Version allocation is therefore
        identical to a cold re-execution, single assignment holds, and the
        aliases ride the normal ``created`` bookkeeping — undo and task
        abort treat a cache hit exactly like a real step.
        """
        now = self.cluster.clock.now
        outputs_created: list[str] = []
        payloads: dict[str, Any] = {}
        for formal, (cached_base, cached_name) in zip(
            pending.spec.outputs, entry.outputs
        ):
            slot = self._slot_for(pending.scope, formal)
            cached = self.db.get(cached_name)
            obj = self.db.alias(slot.base, cached_name)
            slot.version = obj.version
            self.created.append(str(obj.name))
            slot.producer = pending.internal_id
            outputs_created.append(str(obj.name))
            payloads[slot.base] = cached.payload
        pending.issue_seq = next(self._issue_counter)
        pending.result = ToolResult(status=0, outputs=payloads,
                                    log="reused from history")
        pending.record = StepRecord(
            name=pending.spec.name,
            tool=call.tool,
            options=call.options,
            inputs=call.input_names,
            outputs=tuple(outputs_created),
            host="(memo)",
            started_at=now,
            completed_at=now,
            status=0,
            reused=True,
        )
        pending.state = NodeState.SUCCESS
        self.completed.append(pending)
        self.completed_ok.add(pending.internal_id)
        METRICS.counter("memo.hits").inc()
        METRICS.counter("memo.saved_seconds").inc(entry.cost)
        METRICS.counter("engine.steps_completed").inc()
        if TRACER.enabled:
            TRACER.complete_span(
                f"step:{pending.spec.name}", "step", now, now,
                tool=call.tool, host="(memo)", status=0,
                step=pending.label, instance=self.instance, reused=True,
                options=list(call.options), inputs=list(call.input_names),
                outputs=list(outputs_created),
            )
            TRACER.event("step.reused", cat="step", step=pending.label,
                         tool=call.tool, saved=entry.cost,
                         outputs=outputs_created, instance=self.instance)
        self.interp.set_var("status", "0")
        self._on_step_success(pending)

    # ------------------------------------------------------------ completion

    def _drain_until(self, condition: Callable[[], bool]) -> None:
        while not condition():
            if not self.active:
                raise TemplateError(
                    "deadlock: waiting on steps that can never complete"
                )
            self._harvest(self.cluster.wait_any())

    def _harvest(self, done: list[SimProcess]) -> None:
        """Route completed processes to the executions that own them.

        Under concurrent instantiations (several task managers sharing the
        cluster, §3.3.4), a drain performed by one execution may surface
        completions belonging to another; each is absorbed by its owner.
        """
        for proc in done:
            payload = proc.payload
            if payload is None or len(payload) != 3:
                continue
            owner, pending, call = payload
            owner._absorb(pending, call, proc)
        deferred = self._next_pending_restart()
        if deferred is not None:
            self._programmable_abort(*deferred)

    def _absorb(self, pending: "_Pending", call: ToolCall,
                proc: SimProcess) -> None:
        if self.active.get(pending.key) is not pending:
            return
        del self.active[pending.key]
        result = self.registry.run(call)
        pending.result = result
        started = proc.started_at
        finished = proc.finished_at or self.cluster.clock.now
        outputs_created: list[str] = []
        if result.ok:
            for formal in pending.spec.outputs:
                slot = self._slot_for(pending.scope, formal)
                obj = self.db.put(
                    slot.base,
                    result.outputs[slot.base],
                    creator=pending.spec.tool,
                )
                slot.version = obj.version
                slot.producer = pending.internal_id
                self.created.append(str(obj.name))
                outputs_created.append(str(obj.name))
            self.completed_ok.add(pending.internal_id)
            pending.state = NodeState.SUCCESS
        else:
            pending.state = NodeState.FAILED
        pending.record = StepRecord(
            name=pending.spec.name,
            tool=call.tool,
            options=call.options,
            inputs=call.input_names,
            outputs=tuple(outputs_created),
            host=proc.host,
            started_at=started,
            completed_at=finished,
            status=result.status,
        )
        self.completed.append(pending)
        METRICS.counter("engine.steps_completed").inc()
        METRICS.histogram("engine.step_seconds").observe(finished - started)
        METRICS.histogram("step.latency", tool=call.tool).observe(
            finished - started)
        if not result.ok:
            METRICS.counter("engine.steps_failed").inc()
        if TRACER.enabled:
            TRACER.complete_span(
                f"step:{pending.spec.name}", "step", started, finished,
                tool=call.tool, host=proc.host, pid=proc.pid,
                status=result.status, step=pending.label,
                instance=self.instance,
                options=list(call.options), inputs=list(call.input_names),
                outputs=list(outputs_created),
            )
            TRACER.event("step.complete", cat="step", step=pending.label,
                         status=result.status, host=proc.host,
                         pid=proc.pid, instance=self.instance)
        self.interp.set_var("status", str(result.status))
        if not result.ok:
            self._handle_failure(pending)
        else:
            self._on_step_success(pending)

    # ------------------------------------------------------------------ abort

    def _find_step(self, target: str) -> _Pending | None:
        try:
            declared = int(target)
        except ValueError:
            declared = None
        if declared is not None:
            # Numeric targets resolve through the declaring scope, exactly
            # like control dependencies — a declared ID in another subtask
            # expansion is a different step, even if the integer matches.
            internal = self.declared.get(
                (self._current_scope.prefix, declared))
            if internal is None:
                return None
            node = self._by_internal.get(internal)
            if node is not None and node.state is not NodeState.SKIPPED:
                return node
            return None
        for node in itertools.chain(self.completed, self.active.values(),
                                    self.suspending.values()):
            if node.spec.name == target:
                return node
        return None

    def _handle_failure(self, pending: _Pending) -> None:
        if pending.spec.resumed_step is not None:
            # A programmed abort point: restart at the next safe moment —
            # the queue is consumed by this execution's own drive loop, so a
            # concurrent sibling's drain never unwinds our stack (§4.3.4).
            # A queue, because one drain can surface several failures, and
            # every programmed abort must eventually be honoured.
            self._pending_restarts.append(
                (pending, f"step failed: {pending.result.log}")
            )
        # Otherwise the failure is deferred: the template may branch on
        # $status; unhandled failures are dealt with at end of body.

    def _next_pending_restart(self) -> tuple[_Pending, str] | None:
        """Pop the next live deferred abort, lowest internal ID first.

        Processing in internal-ID order means an earlier step's abort runs
        first; if its undo cancels a later failed step, that step's deferred
        abort is dropped here (the step is SKIPPED and will re-execute).
        """
        while self._pending_restarts:
            self._pending_restarts.sort(key=lambda item: item[0].internal_id)
            pending, reason = self._pending_restarts.pop(0)
            if pending.state is not NodeState.FAILED:
                continue
            return pending, reason
        return None

    def _resumed_internal_id(self, pending: _Pending) -> InternalId | None:
        """Map a step's resumed-step spec to an internal ID (None = scratch)."""
        resumed = pending.spec.resumed_step
        if resumed in (None, 0):
            return None
        if resumed == "latest":
            # The most advanced committed state: the completed-ok logical
            # predecessor with the *largest internal ID*.  Completion order
            # is a red herring — under out-of-order harvest the last
            # completion may be a logically earlier step, and resuming there
            # would needlessly undo work that is still valid.
            best: InternalId | None = None
            for node in self.completed:
                if node.result is None or not node.result.ok:
                    continue
                if not node.internal_id < pending.internal_id:
                    continue
                if best is None or node.internal_id > best:
                    best = node.internal_id
            return best
        internal = self.declared.get((pending.scope.prefix, int(resumed)))
        if internal is None:
            raise TemplateError(
                f"step {pending.spec.name!r}: resumed step {resumed} is not "
                "a declared top-level step of its template"
            )
        if not internal < pending.internal_id:
            raise TemplateError(
                f"step {pending.spec.name!r}: resumed step {resumed} is not "
                "a logical predecessor"
            )
        return internal

    def _programmable_abort(self, pending: _Pending, reason: str) -> None:
        """Restart the task from the failed step's resumed task state.

        The §4.3.4 rule: undo every step with a larger internal ID than the
        resumed step, then re-interpret the template.  Re-interpretation
        always starts at the top; surviving steps are skipped by idempotent
        admission, which handles resumed steps buried in subtasks and loops
        uniformly.
        """
        if self.restarts >= self.max_restarts:
            self._abort_task(
                f"{reason} (gave up after {self.restarts} restarts)"
            )
        self.restarts += 1
        resumed = self._resumed_internal_id(pending)
        METRICS.counter("engine.restarts").inc()
        if TRACER.enabled:
            TRACER.event("task.abort", cat="task", step=pending.label,
                         reason=reason, restart=self.restarts,
                         instance=self.instance)
        if self.on_restart is not None:
            self.on_restart(self, pending.spec)
        self._undo_after(resumed if resumed is not None else ())
        raise RestartSignal(prefix=(), index=-1)

    def _undo_after(self, internal_id: InternalId) -> None:
        """Cancel the graph suffix after ``internal_id`` (§4.3.4; () = all).

        Every node with a larger internal ID is killed (RUNNING), dropped
        (PENDING/READY) or undone (completed, with its output versions
        deleted), and marked SKIPPED.  Surviving PENDING nodes whose already
        satisfied dependencies were invalidated get those wait keys back.
        """

        def later(candidate: InternalId) -> bool:
            return candidate > internal_id

        for key, node in [(k, n) for k, n in self.active.items()
                          if later(n.internal_id)]:
            if node.proc is not None:
                self.cluster.kill(node.proc)
            node.state = NodeState.SKIPPED
            del self.active[key]
        for key, node in [(k, n) for k, n in self.suspending.items()
                          if later(n.internal_id)]:
            node.state = NodeState.SKIPPED
            del self.suspending[key]
        unbound: set[tuple[int, str]] = set()
        undone_ids: set[InternalId] = set()
        for node in [p for p in self.completed if later(p.internal_id)]:
            METRICS.counter("engine.steps_undone").inc()
            if TRACER.enabled:
                TRACER.event("step.undo", cat="step", step=node.label,
                             instance=self.instance)
            self.completed.remove(node)
            self.completed_ok.discard(node.internal_id)
            undone_ids.add(node.internal_id)
            node.state = NodeState.SKIPPED
            for formal in node.spec.outputs:
                owner, name = node.scope.resolve(formal)
                slot = owner.slots.get(name)
                if slot is not None and slot.version is not None:
                    actual = slot.actual
                    if self.db.exists(actual) and not self.db.is_deleted(actual):
                        self.db.delete(actual)
                    if actual in self.created:
                        self.created.remove(actual)
                    slot.version = None
                    slot.producer = None
                    unbound.add((owner.id, name))
                self.promised.add((owner.id, name))
        # Undone steps must be re-admitted on re-interpretation.
        for key in [k for k, p in self._admitted.items()
                    if later(p.internal_id)]:
            del self._admitted[key]
        for iid in [i for i in self._by_internal if later(i)]:
            del self._by_internal[iid]
        if self.scheduler == "dag" and (unbound or undone_ids):
            self._rearm_survivors(unbound, undone_ids)
        self._last_admitted = None

    def _rearm_survivors(self, unbound: set[tuple[int, str]],
                         undone_ids: set[InternalId]) -> None:
        """Re-register wait keys that the undo invalidated.

        A surviving PENDING node may have had a data or control dependency
        satisfied (and its key fired) before the producer was undone; the
        dependency is now unmet again, so the node must wait for the
        re-executed producer.  Aborts are rare and bounded by
        ``max_restarts``, so the one-off scan over Suspending is fine.
        """
        for node in self.suspending.values():
            for formal in node.spec.inputs:
                owner, name = node.scope.resolve(formal)
                if (owner.id, name) in unbound:
                    dep_key: DepKey = ("slot", owner.id, name)
                    if dep_key not in node.unmet:
                        node.unmet.add(dep_key)
                        self._waiters.setdefault(dep_key, []).append(node)
            for dep in node.spec.control_deps:
                internal = self.declared.get((node.scope.prefix, dep))
                if internal is not None and internal in undone_ids:
                    dep_key = ("done", internal)
                    if dep_key not in node.unmet:
                        node.unmet.add(dep_key)
                        self._waiters.setdefault(dep_key, []).append(node)

    def _abort_task(self, reason: str) -> None:
        """Remove every side effect and terminate the instantiation."""
        for pending in self.active.values():
            if pending.proc is not None:
                self.cluster.kill(pending.proc)
            pending.state = NodeState.SKIPPED
        self.active.clear()
        for pending in self.suspending.values():
            pending.state = NodeState.SKIPPED
        self.suspending.clear()
        for name in self.created:
            if self.db.exists(name) and not self.db.is_deleted(name):
                self.db.delete(name)
        self.aborted_reason = reason
        METRICS.counter("engine.tasks_aborted").inc()
        if TRACER.enabled:
            TRACER.event("task.aborted", cat="task", task=self.template.name,
                         reason=reason, instance=self.instance)
        raise TaskAborted(self.template.name, reason=reason)

    # -------------------------------------------------------------------- run

    @property
    def _current_scope(self) -> _Scope:
        return self._scope_stack[-1]

    def run(self) -> None:
        """Interpret the template body to completion (or TaskAborted)."""
        with TRACER.span(f"task:{self.template.name}", cat="task",
                         instance=self.instance):
            while True:
                try:
                    self._interpret()
                    self._finish()
                    METRICS.counter("engine.tasks_completed").inc()
                    return
                except RestartSignal:
                    continue

    def _interpret(self) -> None:
        """(Re-)interpret the whole template body from the top.

        Variables are reset and command-occurrence counters cleared; steps
        that survived the last undo are skipped by idempotent admission, so
        re-interpretation lands exactly on the resumed task state.
        """
        self.interp.reset_variables()
        self._occurrence.clear()
        self._scope_stack = [self.root_scope]
        self._run_body(self.template.body_commands, self.root_scope)

    def _run_body(self, commands: tuple[str, ...], scope: _Scope) -> None:
        prefix = scope.prefix
        self._scope_stack.append(scope)
        try:
            for index, command in enumerate(commands):
                self._current_id = prefix + (index,)
                self.interp.eval_command(command)
                self._current_id = prefix + (index,)
        finally:
            self._scope_stack.pop()

    def _finish(self) -> None:
        """End-of-body: drain the cluster, then settle failures and outputs."""
        while True:
            deferred = self._next_pending_restart()
            if deferred is not None:
                self._programmable_abort(*deferred)
            while self.active:
                self._harvest(self.cluster.wait_any())
            unhandled = [
                p for p in self.completed
                if p.result is not None and p.result.status != 0
                and not p.handled_failure and p.spec.resumed_step is None
            ]
            if unhandled:
                failed = unhandled[-1]
                if self.restarts >= self.max_restarts:
                    self._abort_task(
                        f"step {failed.spec.name!r} failed and was never "
                        f"handled: {failed.result.log}"
                    )
                # Compulsory abort with the default resumed state (scratch).
                self.restarts += 1
                if self.on_restart is not None:
                    self.on_restart(self, failed.spec)
                self._undo_after(())
                raise RestartSignal(prefix=(), index=-1)
            if self.suspending:
                names = [p.spec.name for p in self.suspending.values()]
                self._abort_task(
                    f"steps never became ready: {names} (missing inputs or "
                    "failed control dependencies)"
                )
            break
        missing = [
            formal for formal in self.template.outputs
            if self.root_scope.slots[formal].version is None
        ]
        if missing:
            self._abort_task(f"task outputs never produced: {missing}")

    # ---------------------------------------------------------------- results

    def task_inputs(self) -> tuple[str, ...]:
        return tuple(
            self.root_scope.slots[f].actual for f in self.template.inputs
        )

    def task_outputs(self) -> tuple[str, ...]:
        return tuple(
            self.root_scope.slots[f].actual for f in self.template.outputs
        )

    def step_records(self) -> tuple[StepRecord, ...]:
        return tuple(
            p.record for p in self.completed if p.record is not None
        )

    def intermediate_names(self) -> list[str]:
        outputs = set(self.task_outputs())
        return [name for name in self.created if name not in outputs]
