"""The Task Manager (thesis Ch. 4).

One :class:`TaskManager` plays the role of the forked task-manager process:
it interprets a task template with the TDL interpreter, extracts process-level
parallelism dynamically (out-of-order issue and completion over the Active /
Suspending / Result lists), dispatches steps across the simulated workstation
network, enforces programmable abort semantics, and packages the committed
task's operation history into a :class:`repro.core.history.HistoryRecord`.
"""

from repro.taskmgr.attrdb import AttributeDatabase
from repro.taskmgr.manager import TaskManager

__all__ = ["AttributeDatabase", "TaskManager"]
