"""The per-workspace attribute database (§4.3.6).

Objects and attributes are stored separately.  An attribute entry has a name,
a cached value, and optionally a *computation tool*; values are either
retrieved directly or computed synchronously on demand and then cached.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import MetadataError
from repro.octdb.database import DesignDatabase
from repro.octdb.naming import parse_name

#: An attribute computer: payload -> value.
Computer = Callable[[Any], Any]


class AttributeDatabase:
    """Attribute storage + on-demand computation for one workspace."""

    def __init__(self, db: DesignDatabase):
        self.db = db
        self._values: dict[tuple[str, str], Any] = {}
        self._computers: dict[str, Computer] = {}
        self.computations = 0   # instrumentation for the lazy/eager benches

    def register_computer(self, attr: str, computer: Computer) -> None:
        """Register the tool that evaluates ``attr`` from an object payload."""
        self._computers[attr] = computer

    def set(self, name: str, attr: str, value: Any) -> None:
        key = (str(parse_name(name)), attr)
        self._values[key] = value

    def has(self, name: str, attr: str) -> bool:
        return (str(parse_name(name)), attr) in self._values

    def get(self, name: str, attr: str) -> Any:
        """Fetch an attribute, computing (and caching) it if necessary."""
        oname = parse_name(name)
        key = (str(oname), attr)
        if key in self._values:
            return self._values[key]
        computer = self._computers.get(attr)
        if computer is None:
            raise MetadataError(
                f"no value or computation tool for attribute {attr!r} "
                f"of {name!r}"
            )
        payload = self.db.get(oname).payload
        value = computer(payload)
        self.computations += 1
        self._values[key] = value
        return value


def standard_computers(attrdb: AttributeDatabase) -> AttributeDatabase:
    """Install the computers for the synthetic CAD suite's object types."""
    from repro.cad.layout import Layout, Report
    from repro.cad.logic import BooleanNetwork, Cover, Pla

    def area(payload):
        if isinstance(payload, Layout):
            return float(payload.area)
        if isinstance(payload, Pla):
            return float((2 * payload.effective_columns + payload.num_outputs)
                         * (payload.num_terms + 2) * 16)
        raise MetadataError(f"no area for {type(payload).__name__}")

    def delay(payload):
        if isinstance(payload, Layout):
            return payload.critical_delay()
        if isinstance(payload, BooleanNetwork):
            return float(payload.depth)
        if isinstance(payload, Pla):
            return 2.0
        raise MetadataError(f"no delay for {type(payload).__name__}")

    def power(payload):
        if isinstance(payload, Layout):
            return payload.power_estimate()
        raise MetadataError(f"no power for {type(payload).__name__}")

    def literals(payload):
        if isinstance(payload, (BooleanNetwork, Cover, Pla)):
            return float(payload.num_literals)
        raise MetadataError(f"no literals for {type(payload).__name__}")

    def minterms(payload):
        if isinstance(payload, Cover):
            return float(payload.num_terms)
        if isinstance(payload, Pla):
            return float(payload.num_terms)
        raise MetadataError(f"no minterms for {type(payload).__name__}")

    attrdb.register_computer("area", area)
    attrdb.register_computer("delay", delay)
    attrdb.register_computer("power", power)
    attrdb.register_computer("literals", literals)
    attrdb.register_computer("minterms", minterms)
    return attrdb
