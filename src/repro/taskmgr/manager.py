"""The TaskManager facade.

The activity manager spawns one of these per task invocation (in the thesis,
a forked child process).  On success it packages the operation history into a
:class:`HistoryRecord` and removes intermediate objects; on abort it removes
every side effect and raises :class:`TaskAborted` — no history record is
produced (§4.1).
"""

from __future__ import annotations

from repro.cad.registry import ToolRegistry
from repro.clock import GLOBAL_CLOCK, VirtualClock
from repro.core.history import HistoryRecord
from repro.core.memo import DerivationCache
from repro.errors import TaskAborted
from repro.obs import METRICS, TRACER
from repro.octdb.database import DesignDatabase
from repro.sprite.cluster import Cluster
from repro.taskmgr.attrdb import AttributeDatabase
from repro.taskmgr.execution import Navigator, RestartHook, TaskExecution
from repro.tdl.template import TemplateLibrary


class TaskManager:
    """Runs task templates over a database, tool registry and cluster."""

    def __init__(
        self,
        db: DesignDatabase,
        registry: ToolRegistry,
        library: TemplateLibrary,
        cluster: Cluster | None = None,
        attrdb: AttributeDatabase | None = None,
        clock: VirtualClock | None = None,
        navigator: Navigator | None = None,
        on_restart: RestartHook | None = None,
        max_restarts: int = 3,
        labels: dict[str, str] | None = None,
        scheduler: str = "dag",
    ):
        self.db = db
        self.registry = registry
        self.library = library
        self.clock = clock or GLOBAL_CLOCK
        self.cluster = cluster or Cluster.homogeneous(1, clock=self.clock)
        self.attrdb = attrdb or AttributeDatabase(db)
        self.navigator = navigator
        self.on_restart = on_restart
        self.max_restarts = max_restarts
        #: Execution-engine selection, passed through to every
        #: :class:`TaskExecution`: ``"dag"`` (dependency-graph scheduler) or
        #: ``"list"`` (the original rescan engine, kept for comparison).
        self.scheduler = scheduler
        self.executions: list[TaskExecution] = []
        #: Metric labels stamped on this manager's instruments (e.g.
        #: ``{"tenant": "alice"}``) — a multi-tenant server gives each
        #: session its own label set so SLO objectives written as
        #: ``metric:engine.history_records{tenant=alice}`` scope per
        #: tenant.  Empty by default: unlabelled series, as before.
        self.labels: dict[str, str] = dict(labels or {})
        #: Optional ``repro.obs.health.HealthMonitor``: when attached (via
        #: ``monitor.attach_taskmgr(self)``) every task commit triggers an
        #: alert-rule evaluation, so regressions surface at the history
        #: boundary and not only on the clock-advance throttle.
        self.health = None

    def run_task(
        self,
        name: str,
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
        keep_intermediates: bool = False,
        memo: DerivationCache | None = None,
    ) -> HistoryRecord:
        """Instantiate and run a task template to commit.

        ``inputs`` maps the template's input formals to actual (resolved,
        versioned) object names; ``outputs`` maps output formals to the base
        names under which results are stored (defaults to the formal names).
        ``memo`` is the invoking thread's derivation cache: steps whose
        (tool, options, input contents) match a committed derivation are
        satisfied from history instead of executing, and the committed
        record seeds the cache for future invocations.  Returns the task's
        history record; raises :class:`TaskAborted` if the task could not be
        completed.
        """
        template = self.library.get(name)
        execution = TaskExecution(
            template=template,
            inputs=inputs or {},
            outputs=outputs or {},
            db=self.db,
            registry=self.registry,
            cluster=self.cluster,
            library=self.library,
            attrdb=self.attrdb,
            navigator=self.navigator,
            on_restart=self.on_restart,
            max_restarts=self.max_restarts,
            memo=memo,
            scheduler=self.scheduler,
        )
        self.executions.append(execution)
        execution.run()   # raises TaskAborted on failure
        record = HistoryRecord(
            task=template.name,
            inputs=execution.task_inputs(),
            outputs=execution.task_outputs(),
            steps=execution.step_records(),
            recorded_at=self.clock.now,
        )
        self._commit(execution, record, keep_intermediates, memo)
        return record

    def _commit(self, execution: TaskExecution, record: HistoryRecord,
                keep_intermediates: bool,
                memo: DerivationCache | None = None) -> None:
        # Maintain the task abstraction (§4.3.5): hide internal side effects
        # by removing intermediates; protect the real outputs.
        for output in record.outputs:
            self.db.pin(output)
        # Seed the derivation cache before intermediates are tombstoned so
        # every step's inputs are still trivially fetchable (tombstoned
        # versions stay fetchable anyway — this just keeps ordering obvious).
        # Only committed records ever get here: aborted tasks raised already,
        # and populate() itself skips failed steps.
        if memo is not None:
            memo.populate(record, self.db)
        if not keep_intermediates:
            for name_ in execution.intermediate_names():
                if self.db.exists(name_) and not self.db.is_deleted(name_):
                    self.db.delete(name_)
        METRICS.counter("engine.history_records", **self.labels).inc()
        if TRACER.enabled:
            TRACER.event("task.commit", cat="task", task=record.task,
                         steps=len(record.steps),
                         outputs=list(record.outputs),
                         instance=execution.instance)
        if self.health is not None:
            self.health.evaluate(reason="commit")

    def run_concurrent(
        self,
        requests: list[tuple[str, dict[str, str], dict[str, str]]],
        keep_intermediates: bool = False,
        memo: DerivationCache | None = None,
    ) -> list[HistoryRecord]:
        """Run several task instantiations concurrently on the shared
        network (§3.3.4: multiple active instantiations at once).

        All templates are interpreted first — out-of-order issue floods the
        cluster with every ready step from every task — then the pool drains
        with completions routed to their owning instantiations.  Returns one
        history record per request, in request order.
        """
        from repro.errors import RestartSignal

        executions: list[TaskExecution] = []
        for name, inputs, outputs in requests:
            template = self.library.get(name)
            execution = TaskExecution(
                template=template, inputs=inputs or {}, outputs=outputs or {},
                db=self.db, registry=self.registry, cluster=self.cluster,
                library=self.library, attrdb=self.attrdb,
                navigator=self.navigator, on_restart=self.on_restart,
                max_restarts=self.max_restarts, memo=memo,
                scheduler=self.scheduler,
            )
            self.executions.append(execution)
            executions.append(execution)
        # Phase 1: interpret every body (issues steps; may already drain).
        for execution in executions:
            while True:
                try:
                    execution._interpret()
                    break
                except RestartSignal:
                    continue
        # Phase 2: settle each task (failures/restarts handled per owner).
        records: list[HistoryRecord] = []
        for execution in executions:
            while True:
                try:
                    execution._finish()
                    break
                except RestartSignal:
                    while True:
                        try:
                            execution._interpret()
                            break
                        except RestartSignal:
                            continue
            record = HistoryRecord(
                task=execution.template.name,
                inputs=execution.task_inputs(),
                outputs=execution.task_outputs(),
                steps=execution.step_records(),
                recorded_at=self.clock.now,
            )
            self._commit(execution, record, keep_intermediates, memo)
            records.append(record)
        return records
