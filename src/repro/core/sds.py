"""Synchronization data spaces (§3.3.4.2).

An SDS is the only channel through which design threads share data.  Objects
are *moved* between thread workspaces and SDSs; objects in an SDS are never
updated, only new versions added.  There is no locking: when a new version of
an object lands in an SDS, a *notification* is sent to the threads that
previously retrieved the object (thread-addressed, not user-addressed), and
an optional *predicate set* filters notifications down to the situations the
retriever actually cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.clock import GLOBAL_CLOCK, VirtualClock
from repro.errors import SdsError
from repro.obs import METRICS, TRACER
from repro.octdb.database import DesignDatabase, VersionedObject
from repro.octdb.naming import ObjectName, parse_name

if TYPE_CHECKING:
    from repro.core.thread import DesignThread

#: A notification predicate: (new version, previous version or None) -> bool.
Predicate = Callable[[VersionedObject, VersionedObject | None], bool]


@dataclass(frozen=True)
class Notification:
    """A change notification delivered to a design thread."""

    thread: str          # receiving thread's name
    sds: str             # originating SDS
    object_name: str     # versioned name of the new version
    message: str
    at: float


@dataclass
class _Flag:
    """A notification flag left behind by an SDS→thread move."""

    thread: "DesignThread"
    predicates: tuple[Predicate, ...] = ()
    #: Active change propagation (§1.4): matching new versions are placed
    #: directly into the retriever's workspace, not just announced.
    propagate: bool = False


class SynchronizationDataSpace:
    """A shared, append-only data repository with change notification."""

    def __init__(
        self,
        name: str,
        db: DesignDatabase,
        clock: VirtualClock | None = None,
    ):
        self.name = name
        self.db = db
        self.clock = clock or GLOBAL_CLOCK
        self._threads: dict[int, "DesignThread"] = {}
        self._objects: set[str] = set()            # versioned names
        #: Incremental base-name index: contribute() appends one entry
        #: instead of re-parsing the whole object set per version lookup.
        self._by_base: dict[str, list[ObjectName]] = {}
        self._flags: dict[str, list[_Flag]] = {}   # base name → flags
        self.notifications_sent = 0
        self.notifications_suppressed = 0
        #: Write-ahead journal hook: ``journal_hook(sds_name, kind,
        #: details)``, installed by a persistent session.
        self.journal_hook: Callable[[str, str, dict], None] | None = None

    def _journal(self, kind: str, **details) -> None:
        if self.journal_hook is not None:
            self.journal_hook(self.name, kind, details)

    # ----------------------------------------------------------- registration

    def register(self, thread: "DesignThread") -> None:
        """Admit a thread to this SDS (membership is dynamic)."""
        if thread.thread_id not in self._threads:
            self._threads[thread.thread_id] = thread
            self._journal("register", thread=thread.name)

    def unregister(self, thread: "DesignThread") -> None:
        if self._threads.pop(thread.thread_id, None) is not None:
            self._journal("unregister", thread=thread.name)
        for flags in self._flags.values():
            flags[:] = [f for f in flags if f.thread is not thread]

    def is_registered(self, thread: "DesignThread") -> bool:
        return thread.thread_id in self._threads

    def _require_registered(self, thread: "DesignThread", action: str) -> None:
        if not self.is_registered(thread):
            raise SdsError(
                f"thread {thread.name!r} is not registered with SDS "
                f"{self.name!r} and cannot {action}"
            )

    # ---------------------------------------------------------------- queries

    def objects(self) -> frozenset[str]:
        return frozenset(self._objects)

    def versions_of(self, base: str) -> list[ObjectName]:
        """Versions of a base name present in this SDS, oldest first."""
        return list(self._by_base.get(base, ()))

    def _index_add(self, oname: ObjectName) -> None:
        text = str(oname)
        if text in self._objects:
            return
        self._objects.add(text)
        bucket = self._by_base.setdefault(oname.base, [])
        bucket.append(oname)
        # Explicit None comparison: version 0 sorts as a real (lowest)
        # version, after any unversioned entry.
        bucket.sort(key=lambda n: (-1 if n.version is None else n.version))

    # ------------------------------------------------------------------ moves

    def contribute(self, thread: "DesignThread", name: str | ObjectName) -> ObjectName:
        """Thread workspace → SDS (the commit-like publication act).

        Only selective portions of a workspace are published, at times of the
        user's choosing — the thesis's replacement for a transaction commit.
        """
        self._require_registered(thread, "contribute")
        resolved = thread.resolve(name)
        previous = self.versions_of(resolved.base)
        self._index_add(resolved)
        self._journal("contribute", thread=thread.name, name=str(resolved),
                      at=self.clock.now)
        METRICS.counter("sds.moves", direction="contribute").inc()
        from repro.obs.provenance import AUDIT  # lazy: obs sits above core

        AUDIT.record("move", thread=thread.name, actor=thread.owner,
                     at=self.clock.now, direction="contribute",
                     sds=self.name, object=str(resolved))
        if TRACER.enabled:
            TRACER.event("sds.move", cat="sds", direction="contribute",
                         sds=self.name, thread=thread.name,
                         object=str(resolved))
        self._notify(resolved, previous[-1] if previous else None)
        return resolved

    def retrieve(
        self,
        thread: "DesignThread",
        name: str | ObjectName,
        notify: bool = True,
        predicates: tuple[Predicate, ...] = (),
        propagate: bool = False,
    ) -> ObjectName:
        """SDS → thread workspace.

        Leaves a notification flag behind (unless ``notify`` is False) so the
        thread hears about future versions; ``predicates`` narrow the
        notification-triggering conditions (§3.3.4.2).  ``propagate`` selects
        *active propagation* over passive notification (§1.4): matching new
        versions land in the thread's workspace automatically.
        """
        self._require_registered(thread, "retrieve")
        oname = parse_name(name) if isinstance(name, str) else name
        if oname.version is None:
            versions = self.versions_of(oname.base)
            if not versions:
                raise SdsError(f"SDS {self.name!r} holds no {oname.base!r}")
            oname = versions[-1]
        elif str(oname) not in self._objects:
            raise SdsError(f"SDS {self.name!r} holds no {oname}")
        thread.extra_objects.add(str(oname))
        if notify or propagate:
            self._flags.setdefault(oname.base, []).append(
                _Flag(thread=thread, predicates=tuple(predicates),
                      propagate=propagate)
            )
        # Propagation flags place future versions into workspaces outside
        # any journaled operation — a session must checkpoint, not replay.
        self._journal("retrieve", thread=thread.name, name=str(oname),
                      at=self.clock.now, propagate=propagate)
        METRICS.counter("sds.moves", direction="retrieve").inc()
        from repro.obs.provenance import AUDIT  # lazy: obs sits above core

        AUDIT.record("move", thread=thread.name, actor=thread.owner,
                     at=self.clock.now, direction="retrieve",
                     sds=self.name, object=str(oname))
        if TRACER.enabled:
            TRACER.event("sds.move", cat="sds", direction="retrieve",
                         sds=self.name, thread=thread.name,
                         object=str(oname), propagate=propagate)
        return oname

    # ----------------------------------------------------------- notification

    #: Fan-out bucket boundaries: notification counts, not durations.
    FANOUT_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, float("inf"))

    def _notify(self, new_name: ObjectName, prev_name: ObjectName | None) -> None:
        flags = self._flags.get(new_name.base, ())
        if not flags:
            METRICS.histogram("sds.notify_fanout",
                              buckets=self.FANOUT_BUCKETS).observe(0)
            return
        new_obj = self.db.get(new_name)
        prev_obj = self.db.get(prev_name) if prev_name is not None else None
        delivered: set[int] = set()
        for flag in flags:
            if flag.thread.thread_id in delivered:
                continue
            matched = True
            for pred in flag.predicates:
                METRICS.counter("sds.predicate_evals").inc()
                if not pred(new_obj, prev_obj):
                    matched = False
                    break
            if not matched:
                self.notifications_suppressed += 1
                METRICS.counter("sds.notifications_suppressed").inc()
                continue
            if flag.propagate:
                flag.thread.extra_objects.add(str(new_name))
            flag.thread.notifications.append(Notification(
                thread=flag.thread.name,
                sds=self.name,
                object_name=str(new_name),
                message=(
                    f"new version {new_name} checked into SDS {self.name}"
                ),
                at=self.clock.now,
            ))
            delivered.add(flag.thread.thread_id)
            self.notifications_sent += 1
            METRICS.counter("sds.notifications_sent").inc()
            if TRACER.enabled:
                TRACER.event("sds.notify", cat="sds", sds=self.name,
                             thread=flag.thread.name,
                             object=str(new_name),
                             propagated=flag.propagate)
        METRICS.histogram("sds.notify_fanout",
                          buckets=self.FANOUT_BUCKETS).observe(len(delivered))


# ---------------------------------------------------------------- predicates


def attr_improved(metric: Callable[[VersionedObject], float],
                  smaller_is_better: bool = True) -> Predicate:
    """Notify only when the new version improves a metric — the thesis's
    "only when the new version is faster" example."""

    def predicate(new: VersionedObject, prev: VersionedObject | None) -> bool:
        if prev is None:
            return True
        if smaller_is_better:
            return metric(new) < metric(prev)
        return metric(new) > metric(prev)

    return predicate


# ----------------------------------------------------------------- MOVE


def move(
    object_id: str,
    source,
    destination,
    notify: bool = True,
    predicates: tuple[Predicate, ...] = (),
    propagate: bool = False,
) -> ObjectName:
    """The thesis's MOVE operation (§3.3.4.2)::

        MOVE Object-ID, Source-space, Destination-space,
             Notification-flag, Predicate-set

    ``source``/``destination`` are a :class:`DesignThread` and an SDS in
    either order; direct thread→thread moves are rejected ("no direct data
    sharing among threads"), and SDS→SDS moves are not part of the model.
    """
    from repro.core.thread import DesignThread

    src_is_thread = isinstance(source, DesignThread)
    dst_is_thread = isinstance(destination, DesignThread)
    if src_is_thread and dst_is_thread:
        raise SdsError(
            "no direct data sharing among threads: move through an SDS "
            "(or use thread import for read-only monitoring)"
        )
    if src_is_thread and isinstance(destination, SynchronizationDataSpace):
        return destination.contribute(source, object_id)
    if dst_is_thread and isinstance(source, SynchronizationDataSpace):
        return source.retrieve(destination, object_id, notify=notify,
                               predicates=predicates, propagate=propagate)
    raise SdsError("move requires one thread and one SDS")
