"""The Light Weight Transaction (LWT) model — the paper's core contribution.

The LWT hierarchy (thesis Ch. 3):

* *design step* — one CAD tool invocation (recorded as :class:`StepRecord`);
* *design task* — an atomic parallel script of steps (its committed history
  is a :class:`HistoryRecord`);
* *design thread* — an open-ended context: a workspace, a branching control
  stream of history records, frontier cursors, and a current cursor whose
  *thread state* (data scope) bounds what is visible.

Visibility dictates accessibility; updates are single-assignment.  Threads
interact only through synchronization data spaces (:class:`SDS`) and
read-only thread imports.
"""

from repro.core.history import HistoryRecord, StepRecord
from repro.core.control_stream import ControlStream, INITIAL_POINT
from repro.core.datascope import DataScope
from repro.core.thread import DesignThread
from repro.core.sds import Notification, SynchronizationDataSpace
from repro.core.lwt import LWTSystem

__all__ = [
    "ControlStream",
    "DataScope",
    "DesignThread",
    "HistoryRecord",
    "INITIAL_POINT",
    "LWTSystem",
    "Notification",
    "StepRecord",
    "SynchronizationDataSpace",
]
