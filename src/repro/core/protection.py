"""Context-based data protection (§1.4's "contexts offer a natural way for
data protection ... via partitioning of the data space").

A :class:`ProtectedThread` wraps a design thread with an owner-only mutation
policy: the owner may commit, rework and erase; designers on the reader list
may only look (data scope, workspace, stream queries) — the same access split
that thread import provides, but enforced rather than conventional.
"""

from __future__ import annotations

from repro.core.history import HistoryRecord
from repro.core.thread import DesignThread
from repro.errors import VisibilityError


class ProtectedThread:
    """An access-checked facade over one design thread."""

    def __init__(self, thread: DesignThread, readers: set[str] | None = None):
        if not thread.owner:
            raise VisibilityError(
                f"thread {thread.name!r} has no owner; protection needs one"
            )
        self.thread = thread
        self.readers: set[str] = set(readers or ())

    # ------------------------------------------------------------ membership

    def grant_read(self, user: str) -> None:
        self.readers.add(user)

    def revoke_read(self, user: str) -> None:
        self.readers.discard(user)

    def _require_owner(self, user: str, action: str) -> None:
        if user != self.thread.owner:
            raise VisibilityError(
                f"{user!r} is not the owner of thread "
                f"{self.thread.name!r} and cannot {action}"
            )

    def _require_reader(self, user: str, action: str) -> None:
        if user != self.thread.owner and user not in self.readers:
            raise VisibilityError(
                f"{user!r} has no access to thread {self.thread.name!r} "
                f"and cannot {action}"
            )

    # -------------------------------------------------------------- mutation

    def commit_record(self, user: str, record: HistoryRecord, **kwargs) -> int:
        self._require_owner(user, "commit work")
        return self.thread.commit_record(record, **kwargs)

    def move_cursor(self, user: str, point: int, erase: bool = False) -> None:
        self._require_owner(user, "move the cursor")
        self.thread.move_cursor(point, erase=erase)

    def annotate(self, user: str, point: int, text: str) -> None:
        self._require_owner(user, "annotate history")
        self.thread.annotate(point, text)

    def check_in(self, user: str, name: str):
        self._require_owner(user, "check objects in")
        return self.thread.check_in(name)

    # ----------------------------------------------------------------- reads

    def data_scope(self, user: str) -> frozenset[str]:
        self._require_reader(user, "read the data scope")
        return self.thread.data_scope()

    def workspace(self, user: str) -> frozenset[str]:
        self._require_reader(user, "read the workspace")
        return self.thread.workspace()

    def records(self, user: str):
        self._require_reader(user, "browse the history")
        return self.thread.stream.records()
