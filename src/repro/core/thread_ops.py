"""Thread manipulation operators: fork, cascade, join (§3.3.4.1).

These support the bottom-up design methodology: small-granularity threads are
combined into larger ones as sub-modules complete.  Every operator produces a
*new* thread; the originals continue independently (structure is copied,
immutable history records are shared).
"""

from __future__ import annotations

from repro.core.control_stream import INITIAL_POINT
from repro.core.datascope import DataScope
from repro.core.memo import DerivationCache
from repro.core.thread import DesignThread
from repro.errors import ThreadError
from repro.obs import METRICS, TRACER


def _audit():
    # Imported lazily: provenance sits above core in the layer diagram, and
    # a module-level import would also make `python -m repro.obs.provenance`
    # trip runpy's re-import warning.
    from repro.obs.provenance import AUDIT

    return AUDIT


def _lineage(*threads: DesignThread) -> tuple[DerivationCache, ...]:
    """The non-None derivation caches of the given threads, in order."""
    return tuple(t.memo for t in threads if t.memo is not None)


def _require_frontier(thread: DesignThread, point: int, role: str) -> None:
    if point not in thread.stream:
        raise ThreadError(f"{role}: no design point {point} in {thread.name!r}")
    if point != INITIAL_POINT and point not in thread.stream.frontier():
        raise ThreadError(
            f"{role}: connector design points must be frontier cursors, "
            f"but point {point} of {thread.name!r} has following records"
        )


def fork(
    source: DesignThread,
    name: str,
    inherit: str = "none",
    at_point: int | None = None,
    owner: str = "",
) -> DesignThread:
    """Create a new thread, optionally inheriting an initial workspace.

    ``inherit`` is ``"none"`` (default: empty workspace), ``"state"`` (the
    thread state of ``at_point``, default the source's current cursor), or
    ``"workspace"`` (the source's entire thread workspace).  The new thread
    evolves completely independently of the source.
    """
    child = DesignThread(name, db=source.db, owner=owner or source.owner,
                         clock=source.clock)
    # Cross-thread reuse along fork lineage: the child's derivation cache
    # reads through to the parent's (writes stay local to the child).
    child.memo = DerivationCache(child.stream, parents=_lineage(source))
    METRICS.counter("thread.forks").inc()
    _audit().record("fork", thread=name, actor=child.owner,
                    at=source.clock.now, source=source.name, inherit=inherit)
    if TRACER.enabled:
        TRACER.event("thread.fork", cat="thread", source=source.name,
                     child=name, inherit=inherit)
    if inherit == "none":
        return child
    if inherit == "state":
        point = source.current_cursor if at_point is None else at_point
        inherited = source.scope.thread_state(point) | frozenset(
            source.extra_objects
        )
    elif inherit == "workspace":
        inherited = source.workspace()
    else:
        raise ThreadError(f"unknown fork inheritance mode {inherit!r}")
    child.extra_objects.update(inherited)
    return child


def cascade(
    lead: DesignThread,
    trail: DesignThread,
    name: str,
    connector: int | None = None,
) -> DesignThread:
    """Cascade two control streams into one (Fig 3.8).

    ``trail``'s stream is attached after ``connector`` — a frontier cursor of
    ``lead`` (only one connector needs specifying; the trailing stream
    contributes its initial design point).  Workspaces are unioned; the
    resulting frontier is the union of both frontiers minus the connector.
    """
    if lead.db is not trail.db:
        raise ThreadError("cascade requires threads on the same database")
    connector = connector if connector is not None else _sole_frontier(lead)
    _require_frontier(lead, connector, "cascade")
    merged = DesignThread(name, db=lead.db, owner=lead.owner, clock=lead.clock)
    merged.stream, lead_map = lead.stream.copy()
    merged.wire_audit()  # the constructor's hook died with the old stream
    merged.scope = DataScope(merged.stream)
    # The copy preserves the lead points' thread states (and carries their
    # per-node stride caches); warm the merged scope's result caches too so
    # the first lookups after a cascade are O(1) instead of full traversals.
    merged.scope.seed_from(lead.scope, lead_map)
    merged.memo = DerivationCache(merged.stream,
                                  parents=_lineage(lead, trail))
    trail_map = merged.stream.graft(
        trail.stream, lead_map.get(connector, connector), INITIAL_POINT
    )
    merged.extra_objects = set(lead.extra_objects) | set(trail.extra_objects)
    trail_frontier = [trail_map[p] for p in trail.stream.frontier()
                      if p in trail_map]
    merged.current_cursor = max(trail_frontier, default=lead_map[connector])
    METRICS.counter("thread.cascades").inc()
    _audit().record("cascade", thread=name, actor=merged.owner,
                    at=lead.clock.now, lead=lead.name, trail=trail.name)
    if TRACER.enabled:
        TRACER.event("thread.cascade", cat="thread", lead=lead.name,
                     trail=trail.name, merged=name)
    return merged


def join(
    first: DesignThread,
    second: DesignThread,
    name: str,
    connector_first: int | None = None,
    connector_second: int | None = None,
    at_end: bool = True,
) -> DesignThread:
    """Join two control streams (Fig 3.9 / Fig 3.10).

    ``at_end=True`` combines the two specified frontier connector points into
    a single new design point (a junction node) whose thread state is the
    union of both — the ALU-from-arith-and-shifter scenario.  ``at_end=False``
    joins at the head: both streams share the initial design point and the
    result has both frontiers.
    """
    if first.db is not second.db:
        raise ThreadError("join requires threads on the same database")
    merged = DesignThread(name, db=first.db, owner=first.owner,
                          clock=first.clock)
    merged.stream, first_map = first.stream.copy()
    merged.wire_audit()  # the constructor's hook died with the old stream
    merged.scope = DataScope(merged.stream)
    merged.scope.seed_from(first.scope, first_map)
    merged.memo = DerivationCache(merged.stream,
                                  parents=_lineage(first, second))
    second_map = merged.stream.graft(second.stream, INITIAL_POINT,
                                     INITIAL_POINT)
    # A head join preserves the second stream's states as well.
    merged.scope.seed_from(second.scope, second_map)
    merged.extra_objects = set(first.extra_objects) | set(second.extra_objects)
    METRICS.counter("thread.joins").inc()
    _audit().record("join", thread=name, actor=merged.owner,
                    at=first.clock.now, first=first.name, second=second.name,
                    at_end=at_end)
    if TRACER.enabled:
        TRACER.event("thread.join", cat="thread", first=first.name,
                     second=second.name, merged=name, at_end=at_end)
    if not at_end:
        merged.current_cursor = INITIAL_POINT
        return merged
    connector_first = (connector_first if connector_first is not None
                       else _sole_frontier(first))
    connector_second = (connector_second if connector_second is not None
                        else _sole_frontier(second))
    _require_frontier(first, connector_first, "join")
    _require_frontier(second, connector_second, "join")
    junction = merged.stream.add_junction([
        first_map[connector_first], second_map[connector_second],
    ])
    merged.current_cursor = junction
    return merged


def _sole_frontier(thread: DesignThread) -> int:
    frontier = thread.stream.frontier()
    if len(frontier) != 1:
        raise ThreadError(
            f"thread {thread.name!r} has {len(frontier)} frontier cursors; "
            "specify the connector design point explicitly"
        )
    return frontier[0]
