"""History records — the unit the task manager hands to the activity manager.

A :class:`HistoryRecord` encapsulates one *committed* task invocation: the
linear sequence of its design steps ordered by completion time (§3.3.2), with
per-step tool options and actual input/output object versions.  Aborted task
invocations leave no history record.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

_record_counter = itertools.count(1)


@dataclass(frozen=True)
class StepRecord:
    """One completed design step inside a task invocation."""

    name: str                       # step name from the template
    tool: str                       # CAD tool executed
    options: tuple[str, ...]        # actual command options used
    inputs: tuple[str, ...]         # actual versioned object names read
    outputs: tuple[str, ...]        # actual versioned object names created
    host: str = "home"              # where it ran
    started_at: float = 0.0
    completed_at: float = 0.0
    status: int = 0
    #: True when the step was satisfied from the derivation cache instead of
    #: executing (outputs bound/aliased to committed versions, zero cost).
    reused: bool = False

    @property
    def elapsed(self) -> float:
        return self.completed_at - self.started_at


@dataclass
class HistoryRecord:
    """The committed history of one design task invocation."""

    task: str                       # task template name
    inputs: tuple[str, ...]         # task-level actual inputs (versioned)
    outputs: tuple[str, ...]        # task-level actual outputs (versioned)
    steps: tuple[StepRecord, ...]   # ordered by completion time
    recorded_at: float = 0.0
    annotation: str = ""
    instance: int = field(default_factory=lambda: next(_record_counter))
    #: True once aging has stripped internal step detail (§5.4).
    abstracted: bool = False

    @property
    def touched(self) -> tuple[str, ...]:
        """Every object version this record references (inputs then outputs)."""
        return self.inputs + self.outputs

    def abstract(self) -> "HistoryRecord":
        """Vertical aging: forget the internal steps, keep the task summary."""
        self.steps = ()
        self.abstracted = True
        return self

    def intermediates(self) -> tuple[str, ...]:
        """Objects created by steps but not among the task outputs."""
        outs = set(self.outputs)
        seen: list[str] = []
        for step in self.steps:
            for name in step.outputs:
                if name not in outs and name not in seen:
                    seen.append(name)
        return tuple(seen)

    def summary(self) -> str:
        return (
            f"{self.task}#{self.instance} "
            f"({len(self.steps)} steps) "
            f"in={','.join(self.inputs) or '-'} "
            f"out={','.join(self.outputs) or '-'}"
        )
