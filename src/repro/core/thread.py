"""Design threads (§3.3.3).

A design thread embodies the *context* of one design entity: its workspace
(the objects involved in its task instantiations), its control stream, and
its frontier cursors.  The *current cursor* selects the visible thread state;
moving it is the **rework** mechanism — the thesis's replacement for
pre-planned snapshots.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import TYPE_CHECKING

from repro.clock import GLOBAL_CLOCK, VirtualClock
from repro.core.control_stream import INITIAL_POINT, ControlStream
from repro.core.datascope import DataScope
from repro.core.history import HistoryRecord
from repro.core.memo import DerivationCache
from repro.errors import ObjectNotFound, ThreadError
from repro.obs import METRICS, TRACER
from repro.octdb.database import DesignDatabase
from repro.octdb.naming import ObjectName, parse_name

if TYPE_CHECKING:
    from repro.core.sds import Notification

_thread_ids = itertools.count(1)


class DesignThread:
    """One open-ended design activity with its own context."""

    def __init__(
        self,
        name: str,
        db: DesignDatabase,
        owner: str = "",
        clock: VirtualClock | None = None,
    ):
        self.thread_id = next(_thread_ids)
        self.name = name
        self.owner = owner
        self.db = db
        self.clock = clock or GLOBAL_CLOCK
        self.stream = ControlStream()
        self.scope = DataScope(self.stream)
        #: Derivation cache (build avoidance): committed steps seed it, the
        #: task execution engine consults it at dispatch.  Fork/cascade/join
        #: chain caches along lineage; set to None to force re-execution.
        self.memo: DerivationCache | None = DerivationCache(self.stream)
        self.current_cursor = INITIAL_POINT
        #: Objects checked in from outside (paths, SDS retrievals): visible
        #: from every design point of this thread.
        self.extra_objects: set[str] = set()
        #: Lazily rebuilt index over ``extra_objects`` (base → versions),
        #: keyed by the set's size: ``resolve`` used to re-parse every extra
        #: on every call, which dominated lookups in forked threads that
        #: inherit large workspaces.
        self._extras_index: dict[str, list[int]] = {}
        self._extras_index_size = -1
        #: Read-only imported threads (§3.3.4.2), name → live reference.
        self.imports: dict[str, "DesignThread"] = {}
        #: Change notifications delivered by synchronization data spaces.
        self.notifications: list["Notification"] = []
        #: Last time each design point was visited or created (drives the
        #: dead-end-branch garbage collector, §5.4).
        self.point_access: dict[int, float] = {INITIAL_POINT: self.clock.now}
        #: Reason attached to the next audited destructive mutation (set via
        #: the :meth:`audit_reason` context manager by rework/reclamation).
        self._audit_reason = ""
        #: Write-ahead journal hook: ``journal_hook(thread_name, kind,
        #: details)``, installed by a persistent session.  Composite
        #: operations (commit, erase-on-rework) suppress the journaling of
        #: their internal stream mutations and emit one replayable entry.
        self.journal_hook = None
        self._journal_suppress = 0
        self.wire_audit()

    # ---------------------------------------------------------------- auditing

    def wire_audit(self) -> None:
        """Install the destructive-mutation hook on the current stream.

        Must be re-called whenever ``self.stream`` is *replaced* (cascade,
        join, persistence restore) — the hook lives on the stream object.
        """
        self.stream.on_destructive = self._on_stream_destructive
        self.stream.on_mutation = self._on_stream_mutation

    def _on_stream_destructive(self, kind: str, details: dict) -> None:
        from repro.obs.provenance import AUDIT

        AUDIT.record(kind, thread=self.name, actor=self.owner,
                     reason=self._audit_reason, at=self.clock.now, **details)

    def _on_stream_mutation(self, kind: str, details: dict) -> None:
        self._journal(kind, **details)

    def _journal(self, kind: str, **details) -> None:
        if self.journal_hook is not None and self._journal_suppress == 0:
            self.journal_hook(self.name, kind, details)

    #: Public journal entry point for callers outside this class that mutate
    #: thread state a persistent session must replay (e.g. the reclaimer's
    #: vertical aging abstracting a record in place).
    journal_op = _journal

    @contextlib.contextmanager
    def _suppress_journal(self):
        """Hide internal stream mutations behind one composite entry."""
        self._journal_suppress += 1
        try:
            yield
        finally:
            self._journal_suppress -= 1

    @contextlib.contextmanager
    def audit_reason(self, reason: str):
        """Attribute a reason to destructive mutations inside the block."""
        previous = self._audit_reason
        self._audit_reason = reason
        try:
            yield
        finally:
            self._audit_reason = previous

    def __repr__(self) -> str:
        return (f"<DesignThread {self.thread_id} {self.name!r} "
                f"cursor={self.current_cursor}>")

    # -------------------------------------------------------------- recording

    def commit_record(
        self,
        record: HistoryRecord,
        invocation_cursor: int | None = None,
        follow_path: bool = False,
    ) -> int:
        """Attach a committed task's history record (the task manager's
        hand-off, §4.3.5) and auto-advance the cursor when appropriate.

        ``invocation_cursor`` is where the record attaches (default: the
        current cursor — after a rework this deliberately starts a new
        branch).  ``follow_path=True`` selects the §5.3 splice rule instead:
        the activity manager uses it with the tracked path tip of an
        in-flight invocation, so a record completing after an intervening
        rework is inserted *before* the branches that grew below its path.
        """
        if invocation_cursor is None:
            invocation_cursor = self.current_cursor
        record.recorded_at = self.clock.now
        with self._suppress_journal():
            if follow_path:
                point = self.stream.append_spliced(record, invocation_cursor)
            else:
                point = self.stream.append(record, invocation_cursor)
        # The cursor follows its own path's growth (§3.3.3) but never jumps
        # to work committed on another branch.
        if self.current_cursor in self.stream.node(point).parents:
            self.current_cursor = point
        self.point_access[point] = self.clock.now
        self._journal("commit", record=record, at_point=invocation_cursor,
                      spliced=follow_path, point=point,
                      cursor_after=self.current_cursor,
                      at=record.recorded_at)
        METRICS.counter("thread.commits").inc()
        if TRACER.enabled:
            TRACER.event("thread.commit", cat="thread", thread=self.name,
                         point=point, task=record.task,
                         spliced=follow_path,
                         outputs=list(record.outputs))
        return point

    # ----------------------------------------------------------------- rework

    def move_cursor(self, point: int, erase: bool = False) -> None:
        """Rework: reposition the current cursor on an existing design point.

        With ``erase``, the branch between the target point and the old
        cursor (and everything below it) is removed and its objects deleted
        — Fig 3.6's erase-on-rework variant.
        """
        if point not in self.stream:
            raise ThreadError(f"no design point {point} in thread {self.name!r}")
        old_cursor = self.current_cursor
        erasing = erase and old_cursor != point
        # Validate the erase precondition BEFORE touching any state: a
        # failed erase must leave the cursor (and access times, metrics,
        # trace) exactly where they were.
        if erasing and not self.stream.is_ancestor(point, old_cursor):
            raise ThreadError(
                "erase-on-rework requires the target point to be an ancestor "
                f"of the current cursor ({point} is not above {old_cursor})"
            )
        self.current_cursor = point
        self.point_access[point] = self.clock.now
        METRICS.counter("thread.cursor_moves").inc()
        if TRACER.enabled:
            TRACER.event("thread.cursor_move", cat="thread",
                         thread=self.name, src=old_cursor, dst=point,
                         erase=erase)
        if not erasing:
            self._journal("cursor", point=point, erase=False,
                          at=self.clock.now)
            return
        on_path = set(self.stream.ancestors(old_cursor))
        doomed: set[int] = set()
        for child in self.stream.node(point).children:
            if child in on_path:
                doomed.add(child)
                doomed.update(self.stream.descendants(child))
        with self.audit_reason(self._audit_reason or "erase-on-rework"), \
                self._suppress_journal():
            removed = self.stream.remove_points(doomed)
        self.prune_point_access()
        METRICS.counter("thread.branches_erased").inc()
        if TRACER.enabled:
            TRACER.event("thread.erase", cat="thread", thread=self.name,
                         points=len(removed))
        # Reference-aware deletion: erasing a branch must never tombstone a
        # version that a surviving record still claims as an output (records
        # imported, grafted or spliced from elsewhere can share names).
        surviving: set[str] = set()
        for record in self.stream.records():
            surviving.update(record.outputs)
        for record in removed:
            for name in record.outputs + record.intermediates():
                if name in surviving:
                    continue
                if self.db.exists(name) and not self.db.is_deleted(name):
                    self.db.delete(name)
        self._journal("cursor", point=point, erase=True, at=self.clock.now)

    def prune_point_access(self) -> None:
        """Drop access times of points no longer in the stream.

        Erase and reclamation paths remove design points; without pruning,
        the dead-end-branch GC's input (``point_access``) grows unboundedly
        with stale point ids.
        """
        stale = [p for p in self.point_access if p not in self.stream]
        for p in stale:
            del self.point_access[p]

    # ------------------------------------------------------------- visibility

    def data_scope(self) -> frozenset[str]:
        """The thread state of the current cursor plus checked-in objects."""
        return self.scope.thread_state(self.current_cursor) | frozenset(
            self.extra_objects
        )

    def workspace(self) -> frozenset[str]:
        """The thread workspace: union of all frontier thread states (§3.3.3)."""
        names: set[str] = set(self.extra_objects)
        for point in self.stream.frontier():
            names |= self.scope.thread_state(point)
        return frozenset(names)

    def resolve(self, name: str | ObjectName) -> ObjectName:
        """Resolve an object name in the current data scope (§5.2).

        Unversioned names get the most recent visible version; explicit
        versions must be visible.  Checked-in extras resolve to their latest
        checked-in version.
        """
        oname = parse_name(name) if isinstance(name, str) else name
        extra_versions = self._extra_versions(oname.base)
        try:
            resolved = self.scope.resolve(self.current_cursor, oname)
            if oname.version is None and extra_versions:
                return oname.at(max(resolved.version, extra_versions[-1]))
            return resolved
        except ObjectNotFound:
            if oname.version is None and extra_versions:
                return oname.at(extra_versions[-1])
            if oname.version is not None and oname.version in extra_versions:
                return oname
            raise

    def _extra_versions(self, base: str) -> list[int]:
        """Sorted checked-in versions of ``base`` (index rebuilt lazily).

        The index is keyed on the set's size: every in-tree mutation either
        adds names (``check_in``, SDS retrieval, fork inheritance) or
        replaces the set on a freshly created thread (persistence load), so
        a size match means the index is current.  Entries without a version
        are skipped: an extra checked in at version 0 (legal for externally
        numbered objects) is a real version, distinct from an unversioned
        entry (which names no version at all).
        """
        if self._extras_index_size != len(self.extra_objects):
            index: dict[str, list[int]] = {}
            for text in self.extra_objects:
                name = parse_name(text)
                if name.version is not None:
                    index.setdefault(name.base, []).append(name.version)
            for versions in index.values():
                versions.sort()
            self._extras_index = index
            self._extras_index_size = len(self.extra_objects)
        return self._extras_index.get(base, [])

    def is_visible(self, name: str | ObjectName) -> bool:
        try:
            self.resolve(name)
            return True
        except ObjectNotFound:
            return False

    def check_in(self, name: str | ObjectName) -> ObjectName:
        """Make an external object visible in this thread (implicit check-in
        of path-format names, §5.2)."""
        oname = parse_name(name) if isinstance(name, str) else name
        obj = self.db.get(oname)  # must exist
        self.extra_objects.add(str(obj.name))
        self._journal("check_in", name=str(obj.name))
        return obj.name

    # ------------------------------------------------------------ annotations

    def annotate(self, point: int, text: str) -> None:
        """Attach an annotation string to a design point's record (§5.2)."""
        self.stream.record(point).annotation = text
        self._journal("annotate", point=point, text=text)

    def find_annotation(self, text: str) -> int | None:
        return self.stream.find_by_annotation(text)

    def find_time(self, when: float) -> int | None:
        return self.stream.find_by_time(when)

    # ----------------------------------------------------------------- import

    def import_thread(self, other: "DesignThread") -> None:
        """Monitor another designer's thread read-only (§3.3.4.2).

        The import is a continuous reflection, not a snapshot: the stored
        reference is live.  Nothing in this thread may write through it.
        """
        if other is self:
            raise ThreadError("a thread cannot import itself")
        self.imports[other.name] = other
        self._journal("import", other=other.name)
        METRICS.counter("thread.imports").inc()
        if TRACER.enabled:
            TRACER.event("thread.import", cat="thread", thread=self.name,
                         imported=other.name)

    def imported_workspace(self, name: str) -> frozenset[str]:
        """Peek at an imported thread's current workspace."""
        try:
            return self.imports[name].workspace()
        except KeyError:
            raise ThreadError(f"no imported thread named {name!r}") from None
