"""The derivation cache: history-based step memoization (build avoidance).

Papyrus records, for every committed task, the exact tool invocation and the
input versions each step consumed (the step records and the augmented
derivation graph).  That history is sufficient to *skip* re-executing a step
whose tool, options and input contents are unchanged — the make/VOV insight
applied to the rework loop: moving the cursor back and replaying a design
path should not pay for CAD runs that would provably recompute identical
payloads.

Keys
----
An entry is keyed by ``(tool, canonical options, input fingerprints)``:

* **canonical options** — the actual option tokens with input/output names
  replaced by positional placeholders.  Intermediate objects get unique
  per-instantiation base names (``name.t{instance}s{scope}``), so raw option
  tokens would never match across instantiations; canonicalization makes the
  key depend on the option *structure*, not the spelled names.
* **input fingerprints** — content hashes of the resolved input payloads
  (not version names).  Version numbers also differ across instantiations
  (a re-derived intermediate is a fresh version with identical content), so
  name-based fingerprints would break every chain after its first step;
  content hashes let a hit on step N feed a hit on step N+1.

Values carry the committed output versions (base + versioned name, in the
step's output order) and the recorded cost, so a hit can alias the old
payloads under fresh versions and report the simulated seconds it avoided.

Consistency
-----------
The cache is scoped per design thread and shared along fork/cascade/join
lineage through ``parents`` (reads consult parents, writes stay local).
Invalidation rides the PR 2 epoch contract: every lookup lazily syncs
against ``ControlStream.scope_epoch`` and drops entries whose source record
has left the stream (erase-on-rework, branch pruning, horizontal aging).
On top of that, each hit re-validates that the cached output versions are
still fetchable in the database — a reclaimed version can never be served.

Only *committed* steps seed the cache (population happens in the task
manager's commit, from records whose task ran to completion): a step undone
by a programmable abort, or any step of an aborted task, leaves no entry.

The cache is bounded: at most ``max_entries`` entries per cache, evicted in
LRU order (hits refresh recency).  Evictions count ``memo.evictions`` and
the installation-wide live-entry total is the ``memo.size`` gauge, so the
health ruleset can alarm on thrash — a cache that keeps evicting entries it
is about to need again.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from typing import TYPE_CHECKING, Any

from repro.obs import METRICS, TRACER
from repro.obs.runtime import PROFILER
from repro.octdb.naming import parse_name

if TYPE_CHECKING:
    from repro.core.control_stream import ControlStream
    from repro.core.history import HistoryRecord
    from repro.metadata.adg import AugmentedDerivationGraph
    from repro.octdb.database import DesignDatabase

#: Placeholder prefix: cannot collide with user option tokens.
_IN = "\x00in"
_OUT = "\x00out"

#: Default per-cache entry bound.  Every entry holds a key (three small
#: tuples) and output name pairs, so even the default is a few MB at most —
#: the bound exists so a million-commit thread cannot grow without limit,
#: and so ``memo.evictions`` becomes a thrash signal the health ruleset can
#: alarm on (a workload that keeps evicting entries it is about to need).
DEFAULT_MAX_ENTRIES = 4096

MemoKey = tuple[str, tuple[str, ...], tuple[str, ...]]


def canonical_options(
    options: tuple[str, ...],
    input_names: tuple[str, ...],
    output_bases: tuple[str, ...],
) -> tuple[str, ...]:
    """Replace input actuals / output bases in option tokens positionally."""
    mapping: dict[str, str] = {}
    for j, base in enumerate(output_bases):
        mapping[base] = f"{_OUT}{j}"
    for i, name in enumerate(input_names):
        mapping[name] = f"{_IN}{i}"
    return tuple(mapping.get(tok, tok) for tok in options)


def _stable_hash(payload: Any, digest: "hashlib._Hash") -> None:
    """Feed a stable, structure-aware serialization of ``payload``."""
    if getattr(payload, "is_lazy_payload", False):
        # A not-yet-decoded chunk handle (duck-typed: memo must not import
        # the chunk store).  Hash the real payload so warm and cold
        # fingerprints agree — hashing the handle would silently fall to
        # repr() and break every memo key built from restored objects.
        payload = payload.materialize()
    if is_dataclass(payload) and not isinstance(payload, type):
        digest.update(b"D" + type(payload).__name__.encode())
        for f in fields(payload):
            digest.update(f.name.encode())
            _stable_hash(getattr(payload, f.name), digest)
    elif isinstance(payload, dict):
        digest.update(b"M")
        for key in sorted(payload, key=repr):
            _stable_hash(key, digest)
            _stable_hash(payload[key], digest)
    elif isinstance(payload, (list, tuple)):
        digest.update(b"L")
        for item in payload:
            _stable_hash(item, digest)
    elif isinstance(payload, (set, frozenset)):
        digest.update(b"S")
        for item in sorted(payload, key=repr):
            _stable_hash(item, digest)
    elif isinstance(payload, bytes):
        digest.update(b"B" + payload)
    else:
        digest.update(repr(payload).encode())


def fingerprint(payload: Any) -> str:
    """Content hash of one input payload (stable across sessions for the
    deterministic CAD payload dataclasses this repository uses)."""
    digest = hashlib.sha1()
    _stable_hash(payload, digest)
    return digest.hexdigest()


@dataclass
class MemoEntry:
    """One cached derivation: the committed outputs of one step."""

    tool: str
    #: ``(base, versioned name)`` per output, in the step's output order.
    outputs: tuple[tuple[str, str], ...]
    #: Recorded simulated cost of the original execution (seconds).
    cost: float = 0.0
    step: str = ""
    #: ``HistoryRecord.instance`` of the committing record; None when the
    #: entry was warmed from the ADG (no stream anchoring → db checks only).
    record_instance: int | None = None


class DerivationCache:
    """Per-thread derivation memo with lineage sharing."""

    def __init__(
        self,
        stream: "ControlStream | None" = None,
        parents: tuple["DerivationCache", ...] = (),
        max_entries: int | None = DEFAULT_MAX_ENTRIES,
    ):
        self.stream = stream
        self.parents = parents
        self.max_entries = max_entries
        #: Insertion order doubles as recency order (hits move to the end),
        #: so the LRU victim is always the first key.
        self._entries: dict[MemoKey, MemoEntry] = {}
        self._seen_scope_epoch = \
            stream.scope_epoch if stream is not None else -1
        #: Deferred warm loaders (see :meth:`defer_populate`); run on the
        #: first lookup/store instead of eagerly at restore time.
        self._deferred: list[Any] = []

    def __len__(self) -> int:
        self._resolve_deferred()
        return len(self._entries)

    @staticmethod
    def _size_gauge():
        """``memo.size`` tracks live entries across *all* caches (threads
        fork and join; the thrash signal is installation-wide)."""
        return METRICS.gauge("memo.size")

    # ---------------------------------------------------------------- keying

    def key_for(
        self,
        tool: str,
        options: tuple[str, ...],
        input_names: tuple[str, ...],
        input_payloads: tuple[Any, ...],
        output_bases: tuple[str, ...],
    ) -> MemoKey | None:
        """The memo key for one dispatch-ready call (None if unhashable)."""
        with PROFILER.section("memo.fingerprint"):
            try:
                prints = tuple(fingerprint(p) for p in input_payloads)
            except Exception:
                return None
            return (tool,
                    canonical_options(options, input_names, output_bases),
                    prints)

    # ---------------------------------------------------------- deferred warm

    def defer_populate(self, loader: Any) -> None:
        """Register a warm loader to run on first use instead of now.

        ``loader(cache)`` should seed the cache (e.g. by calling
        :meth:`populate` per restored record) and return the entry count.
        Restoring a long-history thread registers one loader instead of
        fingerprinting every historical payload up front — a session that
        never reworks never pays for warming at all.
        """
        self._deferred.append(loader)

    def _resolve_deferred(self) -> None:
        if not self._deferred:
            return
        # Clear first: a loader calling store()/lookup() must not recurse.
        pending, self._deferred = self._deferred, []
        warmed = 0
        for loader in pending:
            warmed += int(loader(self) or 0)
        if warmed:
            METRICS.counter("memo.deferred_warms").inc(warmed)

    # ---------------------------------------------------------------- lookup

    def _sync(self) -> None:
        """Drop entries whose source record left the stream (erase, pruning,
        aging — every such mutation bumps ``scope_epoch``)."""
        if self.stream is None or \
                self.stream.scope_epoch == self._seen_scope_epoch:
            return
        self._seen_scope_epoch = self.stream.scope_epoch
        live = {r.instance for r in self.stream.records()}
        stale = [k for k, e in self._entries.items()
                 if e.record_instance is not None
                 and e.record_instance not in live]
        for key in stale:
            del self._entries[key]
        if stale:
            METRICS.counter("memo.invalidations").inc(len(stale))
            self._size_gauge().dec(len(stale))

    def lookup(self, key: MemoKey, db: "DesignDatabase") -> MemoEntry | None:
        """Find a valid entry for ``key`` (own store first, then lineage).

        An entry only counts when every cached output version is still
        fetchable; a stale local entry is dropped on the spot.
        """
        with PROFILER.section("memo.lookup"):
            self._resolve_deferred()
            self._sync()
            entry = self._entries.get(key)
            if entry is not None:
                if all(db.exists(name) for _, name in entry.outputs):
                    # Refresh recency so a hot entry never becomes the
                    # victim.
                    self._entries[key] = self._entries.pop(key)
                    return entry
                del self._entries[key]
                METRICS.counter("memo.invalidations").inc()
                self._size_gauge().dec()
            for parent in self.parents:
                found = parent.lookup(key, db)
                if found is not None:
                    return found
            return None

    # ------------------------------------------------------------ population

    def store(self, key: MemoKey, entry: MemoEntry) -> None:
        self._resolve_deferred()
        self._sync()
        if key in self._entries:
            self._entries.pop(key)          # overwrite refreshes recency
        else:
            self._size_gauge().inc()
            if self.max_entries is not None and \
                    len(self._entries) >= self.max_entries:
                victim = next(iter(self._entries))
                del self._entries[victim]
                METRICS.counter("memo.evictions").inc()
                self._size_gauge().dec()
        self._entries[key] = entry

    def populate(self, record: "HistoryRecord",
                 db: "DesignDatabase") -> int:
        """Seed the cache from one *committed* task's step records.

        Called by the task manager at commit time; failed steps (non-zero
        status) never seed, and aborted tasks never reach here at all.
        Returns the number of entries added.
        """
        added = 0
        for step in record.steps:
            if step.status != 0 or not step.outputs:
                continue
            try:
                payloads = tuple(db.get(name).payload for name in step.inputs)
            except Exception:
                continue                     # inputs reclaimed: not cacheable
            output_bases = tuple(parse_name(n).base for n in step.outputs)
            key = self.key_for(step.tool, step.options, step.inputs,
                               payloads, output_bases)
            if key is None:
                continue
            self.store(key, MemoEntry(
                tool=step.tool,
                outputs=tuple(zip(output_bases, step.outputs)),
                cost=step.elapsed,
                step=step.name,
                record_instance=record.instance,
            ))
            added += 1
        if added and TRACER.enabled:
            TRACER.event("memo.populate", cat="memo", task=record.task,
                         entries=added)
        return added

    def warm_from_adg(self, adg: "AugmentedDerivationGraph",
                      db: "DesignDatabase") -> int:
        """Seed the cache from an augmented derivation graph.

        The ADG stores one edge per output; edges sharing (tool, options,
        inputs, step, time) are regrouped into their originating step so
        multi-output steps hit as a unit.  Entries carry no record anchor
        (the ADG is thread-independent), so only database liveness gates
        their reuse.
        """
        grouped: dict[tuple, list[str]] = {}
        for edge in adg.edges():
            ident = (edge.tool, edge.options, edge.inputs, edge.step, edge.at)
            grouped.setdefault(ident, []).append(edge.output)
        added = 0
        for (tool, options, inputs, step, _at), outputs in grouped.items():
            try:
                payloads = tuple(db.get(name).payload for name in inputs)
            except Exception:
                continue
            output_bases = tuple(parse_name(n).base for n in outputs)
            key = self.key_for(tool, options, inputs, payloads, output_bases)
            if key is None:
                continue
            self.store(key, MemoEntry(
                tool=tool,
                outputs=tuple(zip(output_bases, tuple(outputs))),
                step=step,
            ))
            added += 1
        return added
