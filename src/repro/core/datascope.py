"""Data scope computation (§5.3).

The *thread state* of a design point is the set of object versions referenced
as inputs or created as outputs by the records on the point's backward
closure.  The current cursor's thread state is the *data scope* — the default
context in which object names are resolved.

Computation is a backward traversal with memoization: selected design points
cache their thread states, and a traversal stops as soon as it reaches a
cached point.  Insertion of records above a cached point patches the cache
(handled in :mod:`repro.core.control_stream`).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.control_stream import INITIAL_POINT, ControlStream
from repro.errors import ObjectNotFound
from repro.octdb.naming import ObjectName, parse_name


class DataScope:
    """Computes and caches thread states over one control stream."""

    #: Cache the thread state of every CACHE_STRIDE-th record on a path.
    CACHE_STRIDE = 8

    def __init__(self, stream: ControlStream, cache_stride: int | None = None):
        self.stream = stream
        self.cache_stride = cache_stride if cache_stride is not None \
            else self.CACHE_STRIDE
        #: Traversal-cost instrumentation for the caching benchmark.
        self.nodes_visited = 0

    # ------------------------------------------------------------ computation

    def thread_state(self, point: int, use_cache: bool = True) -> frozenset[str]:
        """The set of versioned object names visible at ``point``.

        Bottom-up over the backward closure, stopping at cached design points;
        every ``cache_stride``-th point computed on the way gets its thread
        state cached (point numbers grow along paths, so caches spread evenly
        through the stream).
        """
        memo: dict[int, frozenset[str]] = {}

        def resolved(p: int) -> frozenset[str] | None:
            if p in memo:
                return memo[p]
            if use_cache:
                return self.stream.node(p).cached_scope
            return None

        stack = [point]
        while stack:
            current = stack[-1]
            if resolved(current) is not None:
                stack.pop()
                continue
            node = self.stream.node(current)
            pending = [p for p in node.parents if resolved(p) is None]
            if pending:
                stack.extend(pending)
                continue
            self.nodes_visited += 1
            collected: set[str] = set()
            for p in node.parents:
                parent_state = resolved(p)
                assert parent_state is not None
                collected |= parent_state
            if node.record is not None:
                collected.update(node.record.touched)
            state = frozenset(collected)
            memo[current] = state
            if (use_cache and self.cache_stride and current != INITIAL_POINT
                    and current % self.cache_stride == 0):
                node.cached_scope = state
            stack.pop()
        result = resolved(point)
        assert result is not None
        return result

    def invalidate(self, point: int | None = None) -> None:
        """Drop cached states (all, or on the forward closure of a point)."""
        if point is None:
            targets = self.stream.points()
        else:
            targets = [point] + self.stream.descendants(point)
        for p in targets:
            if p in self.stream:
                self.stream.node(p).cached_scope = None

    # ------------------------------------------------------------- resolution

    def visible_versions(self, point: int) -> dict[str, list[int]]:
        """Map of base name → sorted visible version numbers at ``point``."""
        versions: dict[str, list[int]] = defaultdict(list)
        for text in self.thread_state(point):
            name = parse_name(text)
            if name.version is not None:
                versions[name.base].append(name.version)
        return {base: sorted(set(v)) for base, v in versions.items()}

    def resolve(self, point: int, name: str | ObjectName) -> ObjectName:
        """Resolve a (possibly unversioned) name against the data scope.

        Unversioned names resolve to the most recent visible version (§5.2);
        explicitly versioned names must themselves be visible.
        """
        oname = parse_name(name) if isinstance(name, str) else name
        versions = self.visible_versions(point).get(oname.base, [])
        if oname.version is None:
            if not versions:
                raise ObjectNotFound(
                    f"{oname.base!r} is not visible from design point {point}"
                )
            return oname.at(versions[-1])
        if oname.version not in versions:
            raise ObjectNotFound(
                f"{oname} is not visible from design point {point}"
            )
        return oname

    def is_visible(self, point: int, name: str | ObjectName) -> bool:
        try:
            self.resolve(point, name)
            return True
        except ObjectNotFound:
            return False
