"""Data scope computation (§5.3).

The *thread state* of a design point is the set of object versions referenced
as inputs or created as outputs by the records on the point's backward
closure.  The current cursor's thread state is the *data scope* — the default
context in which object names are resolved.

Computation is a backward traversal with memoization on three levels:

1. **Stride caches** — selected design points store their thread state on
   their :class:`~repro.core.control_stream.RecordNode` (every
   ``cache_stride``-th point), so a traversal stops as soon as it reaches a
   cached point.  Insertion of records above a cached point patches the
   cache (handled in :mod:`repro.core.control_stream`).
2. **Epoch-keyed result cache** — the full thread state of recently queried
   points, valid while :attr:`ControlStream.scope_epoch` is unchanged.
   Repeated ``thread_state``/``data_scope()`` calls between mutations (the
   rework/context-switch ping-pong the traces showed dominating
   ``bench_scale``) are O(1) dictionary hits.
3. **Incremental visible-versions index** — ``resolve`` used to re-parse
   the whole frozenset on every call; now a per-point ``base → versions``
   index is cached, and a fresh point with a cached parent derives its index
   by applying the record's ``touched`` delta instead of re-parsing.

Invalidation is centralized: every public entry point synchronizes against
the stream's ``scope_epoch`` and drops the epoch-keyed caches when any
state-changing mutation happened — callers never need ad-hoc
``invalidate()`` calls around stream mutations.
"""

from __future__ import annotations

from bisect import insort
from collections import defaultdict

from repro.core.control_stream import INITIAL_POINT, ControlStream
from repro.errors import ObjectNotFound
from repro.obs import METRICS
from repro.obs.runtime import PROFILER
from repro.octdb.naming import ObjectName, parse_name


class DataScope:
    """Computes and caches thread states over one control stream."""

    #: Cache the thread state of every CACHE_STRIDE-th record on a path.
    CACHE_STRIDE = 8

    #: Bound on the epoch-keyed result caches (LRU eviction): enough to keep
    #: every frontier cursor of a busy thread warm without letting a long
    #: linear history accumulate O(n) full states.
    RESULT_CACHE_SIZE = 128

    def __init__(
        self,
        stream: ControlStream,
        cache_stride: int | None = None,
        result_cache_size: int | None = None,
    ):
        self.stream = stream
        self.cache_stride = cache_stride if cache_stride is not None \
            else self.CACHE_STRIDE
        #: 0 disables the epoch-keyed result caches (stride-layer ablations).
        self.result_cache_size = result_cache_size \
            if result_cache_size is not None else self.RESULT_CACHE_SIZE
        #: Traversal-cost instrumentation for the caching benchmark.
        self.nodes_visited = 0
        #: Epoch-keyed full-result cache: point → thread state.
        self._state_cache: dict[int, frozenset[str]] = {}
        #: Epoch-keyed resolution index: point → {base: sorted versions}.
        self._vv_cache: dict[int, dict[str, list[int]]] = {}
        self._seen_stream: ControlStream | None = None
        self._seen_scope_epoch = -1

    # ----------------------------------------------------------- invalidation

    def _sync(self) -> None:
        """Centralized invalidation: drop epoch-keyed caches if the stream
        mutated underneath us (or the scope was rebound to a new stream)."""
        stream = self.stream
        if (stream is self._seen_stream
                and stream.scope_epoch == self._seen_scope_epoch):
            return
        # The in-sync fast path above is two attribute compares — metering
        # it would measure the meter; only the invalidation work is timed.
        with PROFILER.section("datascope.sync"):
            if self._state_cache or self._vv_cache:
                METRICS.counter("datascope.invalidations").inc()
            self._state_cache.clear()
            self._vv_cache.clear()
            self._seen_stream = stream
            self._seen_scope_epoch = stream.scope_epoch

    def invalidate(self, point: int | None = None) -> None:
        """Drop cached states (all, or on the forward closure of a point).

        Stream mutators invalidate their own damage now (epoch contract in
        :mod:`repro.core.control_stream`); this remains for callers that
        mutate records in place (e.g. editing ``touched`` sets directly).
        """
        if point is None:
            targets = self.stream.points()
        else:
            targets = [point] + self.stream.descendants(point)
        for p in targets:
            if p in self.stream:
                self.stream.node(p).cached_scope = None
        self._state_cache.clear()
        self._vv_cache.clear()

    def seed_from(self, other: "DataScope",
                  mapping: dict[int, int]) -> None:
        """Warm this scope's epoch-keyed caches from another scope.

        ``mapping`` translates the other stream's point numbers to this
        stream's (the result of :meth:`ControlStream.copy` or a root graft).
        Only valid when the mapped points' thread states are preserved — the
        caller guarantees that (cascade/join copy the lead stream verbatim).
        Seeded values are plain state sets / version indexes, so no aliasing
        hazard exists: both sides treat them as immutable.
        """
        self._sync()
        other._sync()
        for point, state in other._state_cache.items():
            target = mapping.get(point)
            if target is not None and target in self.stream:
                self._remember(self._state_cache, target, state)
        for point, index in other._vv_cache.items():
            target = mapping.get(point)
            if target is not None and target in self.stream:
                self._remember(self._vv_cache, target, index)

    def _remember(self, cache: dict, key: int, value) -> None:
        if not self.result_cache_size:
            return
        cache.pop(key, None)
        cache[key] = value
        if len(cache) > self.result_cache_size:
            cache.pop(next(iter(cache)))

    # ------------------------------------------------------------ computation

    def thread_state(self, point: int, use_cache: bool = True) -> frozenset[str]:
        """The set of versioned object names visible at ``point``.

        With the cache on, a repeat query at an unchanged ``scope_epoch`` is
        a dictionary hit; otherwise bottom-up over the backward closure,
        stopping at cached design points (full results of other recently
        queried points included — an append extends its parent's cached
        state in O(delta)).  Every ``cache_stride``-th point computed on the
        way gets its thread state cached on its node (point numbers grow
        along paths, so caches spread evenly through the stream).
        """
        if use_cache:
            self._sync()
            hit = self._state_cache.get(point)
            if hit is not None:
                self._remember(self._state_cache, point, hit)  # LRU touch
                METRICS.counter("datascope.cache_hits").inc()
                return hit
            METRICS.counter("datascope.cache_misses").inc()
        # Cache hits return above in O(1); only the backward traversal —
        # the cost the stride/result caches exist to amortize — is metered.
        with PROFILER.section("datascope.thread_state"):
            memo: dict[int, frozenset[str]] = {}

            def resolved(p: int) -> frozenset[str] | None:
                if p in memo:
                    return memo[p]
                if use_cache:
                    state = self._state_cache.get(p)
                    if state is not None:
                        return state
                    return self.stream.node(p).cached_scope
                return None

            stack = [point]
            while stack:
                current = stack[-1]
                if resolved(current) is not None:
                    stack.pop()
                    continue
                node = self.stream.node(current)
                pending = [p for p in node.parents if resolved(p) is None]
                if pending:
                    stack.extend(pending)
                    continue
                self.nodes_visited += 1
                collected: set[str] = set()
                for p in node.parents:
                    parent_state = resolved(p)
                    assert parent_state is not None
                    collected |= parent_state
                if node.record is not None:
                    collected.update(node.record.touched)
                state = frozenset(collected)
                memo[current] = state
                if (use_cache and self.cache_stride
                        and current != INITIAL_POINT
                        and current % self.cache_stride == 0):
                    node.cached_scope = state
                stack.pop()
            result = resolved(point)
            assert result is not None
            if use_cache:
                self._remember(self._state_cache, point, result)
            return result

    # ------------------------------------------------------------- resolution

    def _parse_index(self, state: frozenset[str]) -> dict[str, list[int]]:
        versions: dict[str, list[int]] = defaultdict(list)
        for text in state:
            name = parse_name(text)
            if name.version is not None:
                versions[name.base].append(name.version)
        return {base: sorted(set(v)) for base, v in versions.items()}

    def visible_versions(self, point: int) -> dict[str, list[int]]:
        """Map of base name → sorted visible version numbers at ``point``.

        Cached per point while the ``scope_epoch`` holds; a point whose sole
        parent is cached derives its index by applying the record's
        ``touched`` names as a delta instead of re-parsing the whole thread
        state.  Callers must treat the result as read-only.
        """
        self._sync()
        hit = self._vv_cache.get(point)
        if hit is not None:
            self._remember(self._vv_cache, point, hit)  # LRU touch
            METRICS.counter("datascope.cache_hits").inc()
            return hit
        METRICS.counter("datascope.cache_misses").inc()
        node = self.stream.node(point)
        index: dict[str, list[int]] | None = None
        if node.record is not None and len(node.parents) == 1:
            parent_index = self._vv_cache.get(node.parents[0])
            if parent_index is not None:
                index = {base: v[:] for base, v in parent_index.items()}
                for text in node.record.touched:
                    name = parse_name(text)
                    if name.version is None:
                        continue
                    bucket = index.setdefault(name.base, [])
                    if name.version not in bucket:
                        insort(bucket, name.version)
        if index is None:
            index = self._parse_index(self.thread_state(point))
        self._remember(self._vv_cache, point, index)
        return index

    def resolve(self, point: int, name: str | ObjectName) -> ObjectName:
        """Resolve a (possibly unversioned) name against the data scope.

        Unversioned names resolve to the most recent visible version (§5.2);
        explicitly versioned names must themselves be visible.
        """
        oname = parse_name(name) if isinstance(name, str) else name
        versions = self.visible_versions(point).get(oname.base, [])
        if oname.version is None:
            if not versions:
                raise ObjectNotFound(
                    f"{oname.base!r} is not visible from design point {point}"
                )
            return oname.at(versions[-1])
        if oname.version not in versions:
            raise ObjectNotFound(
                f"{oname} is not visible from design point {point}"
            )
        return oname

    def is_visible(self, point: int, name: str | ObjectName) -> bool:
        try:
            self.resolve(point, name)
            return True
        except ObjectNotFound:
            return False
