"""The LWT system facade.

Bundles the shared database, the thread registry and the SDS registry so that
examples and scenario drivers deal with one object.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clock import GLOBAL_CLOCK, VirtualClock
from repro.core.sds import SynchronizationDataSpace
from repro.core.thread import DesignThread
from repro.errors import SdsError, ThreadError
from repro.octdb.database import DesignDatabase


class LWTSystem:
    """One Papyrus installation: a database plus threads and SDSs."""

    def __init__(
        self,
        db: DesignDatabase | None = None,
        clock: VirtualClock | None = None,
    ):
        self.clock = clock or GLOBAL_CLOCK
        # NB: explicit None check — an empty DesignDatabase is falsy
        self.db = db if db is not None else DesignDatabase(clock=self.clock)
        self.threads: dict[str, DesignThread] = {}
        self.spaces: dict[str, SynchronizationDataSpace] = {}
        #: Registry observer: ``on_change(kind, details)`` after thread/SDS
        #: creation, adoption and removal.  A persistent session uses it to
        #: journal creations and to detect structure (fork/cascade/join
        #: adoptions) it must checkpoint instead of replay.
        self.on_change: Callable[[str, dict[str, Any]], None] | None = None

    def _changed(self, kind: str, **details: Any) -> None:
        if self.on_change is not None:
            self.on_change(kind, details)

    # ---------------------------------------------------------------- threads

    def create_thread(self, name: str, owner: str = "") -> DesignThread:
        if name in self.threads:
            raise ThreadError(f"thread {name!r} already exists")
        thread = DesignThread(name, db=self.db, owner=owner, clock=self.clock)
        self.threads[name] = thread
        self._changed("thread", name=name, owner=owner, thread=thread)
        return thread

    def thread(self, name: str) -> DesignThread:
        try:
            return self.threads[name]
        except KeyError:
            raise ThreadError(f"no thread named {name!r}") from None

    def adopt_thread(self, thread: DesignThread) -> DesignThread:
        """Register a thread produced by fork/cascade/join."""
        if thread.name in self.threads:
            raise ThreadError(f"thread {thread.name!r} already exists")
        self.threads[thread.name] = thread
        self._changed("adopt", name=thread.name, thread=thread)
        return thread

    def drop_thread(self, name: str) -> None:
        if self.threads.pop(name, None) is not None:
            self._changed("drop", name=name)

    # ------------------------------------------------------------------- SDSs

    def create_sds(
        self, name: str, members: list[DesignThread] | None = None
    ) -> SynchronizationDataSpace:
        if name in self.spaces:
            raise SdsError(f"SDS {name!r} already exists")
        sds = SynchronizationDataSpace(name, db=self.db, clock=self.clock)
        self.spaces[name] = sds
        self._changed("sds", name=name, sds=sds)
        for thread in members or ():
            sds.register(thread)
        return sds

    def sds(self, name: str) -> SynchronizationDataSpace:
        try:
            return self.spaces[name]
        except KeyError:
            raise SdsError(f"no SDS named {name!r}") from None
