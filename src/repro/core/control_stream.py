"""The control stream: a design thread's branching history structure.

Nodes are committed history records; *design points* are identified with the
node numbers (the point "just after" that record), plus the distinguished
:data:`INITIAL_POINT`.  The structure is a DAG: rework creates branches
(several children), thread joins create junction nodes (several parents) —
exactly the variable-children / variable-parents shape of the thesis's
``HistoryRecord`` struct (§5.3).

The §5.3 insertion rule is implemented by :meth:`ControlStream.append_spliced`:
a completed task's record attaches at its logical path's tip (tracked by the
activity manager from the invocation cursor); if a rework grew branches below
the tip in the meantime, the record is spliced in before them.

Cache-consistency contract (see docs/ARCHITECTURE.md): every mutator bumps
:attr:`ControlStream.epoch`; mutators that can change the thread state of a
*surviving* point additionally bump :attr:`ControlStream.scope_epoch` and
repair or drop the per-node ``cached_scope`` entries they touched, so scope
caches keyed by ``scope_epoch`` never serve stale data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.history import HistoryRecord
from repro.errors import ThreadError

#: The design point before any record: an empty thread state.
INITIAL_POINT = 0


@dataclass
class RecordNode:
    """One node of the control stream (thesis ``struct HistoryRecord``)."""

    number: int
    record: HistoryRecord | None          # None = junction node (thread join)
    parents: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    cached_scope: frozenset[str] | None = None

    @property
    def is_junction(self) -> bool:
        return self.record is None


class ControlStream:
    """The branching structure of committed tasks in one design thread."""

    def __init__(self):
        root = RecordNode(number=INITIAL_POINT, record=None)
        self._nodes: dict[int, RecordNode] = {INITIAL_POINT: root}
        self._next = 1
        self._epoch = 0
        self._scope_epoch = 0
        #: Audit hook: called as ``on_destructive(kind, details)`` after a
        #: destructive mutation (``remove_points``, ``splice_out``,
        #: ``replace_region``) succeeds.  Installing it here — at the single
        #: choke point every erase/abstraction path funnels through — is what
        #: makes the audit journal's exactly-once guarantee hold no matter
        #: which caller (rework, reclamation, shell) triggered the mutation.
        self.on_destructive: Callable[[str, dict], None] | None = None
        #: Journal hook: called as ``on_mutation(kind, details)`` after *any*
        #: structural mutation, with replay-grade details (full records where
        #: the mutation adds them).  A persistent session uses it to build
        #: the write-ahead journal; unlike :attr:`on_destructive` it also
        #: fires for additive mutations so the session can detect structure
        #: it cannot journal entry-by-entry (grafts, junctions).
        self.on_mutation: Callable[[str, dict], None] | None = None

    def _audit(self, kind: str, **details) -> None:
        if self.on_destructive is not None:
            self.on_destructive(kind, details)

    def _mutated(self, kind: str, **details) -> None:
        if self.on_mutation is not None:
            self.on_mutation(kind, details)

    # --------------------------------------------------------------- epochs

    @property
    def epoch(self) -> int:
        """Monotonic counter of structural mutations of any kind."""
        return self._epoch

    @property
    def scope_epoch(self) -> int:
        """Monotonic counter of mutations that may change the thread state
        of an *existing* point (splices, removals, region replacement).

        Purely additive mutations (``append``, ``add_junction``, ``graft``)
        leave it unchanged: they create new points but never alter what any
        surviving point can see, so scope caches keyed on this epoch stay
        valid across them.
        """
        return self._scope_epoch

    def _bump(self, states_changed: bool = False) -> None:
        self._epoch += 1
        if states_changed:
            self._scope_epoch += 1

    def _drop_cached_scopes(self, points) -> None:
        for point in points:
            node = self._nodes.get(point)
            if node is not None:
                node.cached_scope = None

    # ------------------------------------------------------------- accessors

    def node(self, point: int) -> RecordNode:
        try:
            return self._nodes[point]
        except KeyError:
            raise ThreadError(f"no design point {point}") from None

    def record(self, point: int) -> HistoryRecord:
        node = self.node(point)
        if node.record is None:
            raise ThreadError(f"design point {point} has no history record")
        return node.record

    def __contains__(self, point: int) -> bool:
        return point in self._nodes

    def __len__(self) -> int:
        """Number of history records (junctions and the root excluded)."""
        return sum(1 for n in self._nodes.values()
                   if n.record is not None)

    def __bool__(self) -> bool:
        # A stream with zero records is still a stream; without this,
        # truthiness falls through to ``__len__`` — wrong for emptiness
        # tests, and a forced hydration for lazily restored streams.
        return True

    def points(self) -> list[int]:
        return sorted(self._nodes)

    def records(self) -> list[HistoryRecord]:
        return [n.record for n in self._nodes.values() if n.record is not None]

    def frontier(self) -> list[int]:
        """Design points without following records (§3.3.3)."""
        return sorted(p for p, n in self._nodes.items() if not n.children)

    # ------------------------------------------------------------- traversal

    def ancestors(self, point: int) -> list[int]:
        """Backward closure of a point, the point itself included."""
        seen: list[int] = []
        seen_set: set[int] = set()
        stack = [point]
        while stack:
            current = stack.pop()
            if current in seen_set:
                continue
            seen_set.add(current)
            seen.append(current)
            stack.extend(self.node(current).parents)
        return seen

    def descendants(self, point: int) -> list[int]:
        """Forward closure of a point, the point itself excluded."""
        seen: list[int] = []
        seen_set: set[int] = set()
        stack = list(self.node(point).children)
        while stack:
            current = stack.pop()
            if current in seen_set:
                continue
            seen_set.add(current)
            seen.append(current)
            stack.extend(self.node(current).children)
        return seen

    def is_ancestor(self, maybe_ancestor: int, point: int) -> bool:
        return maybe_ancestor in self.ancestors(point)

    def chain_between(self, ancestor: int, descendant: int) -> list[int]:
        """Points strictly after ``ancestor`` up to and including
        ``descendant`` along ancestry (all of descendant's ancestors that are
        descendants of ancestor)."""
        up = set(self.ancestors(descendant))
        down = set(self.descendants(ancestor))
        return sorted(up & down)

    # ------------------------------------------------------------- mutation

    def _new_node(self, record: HistoryRecord | None) -> RecordNode:
        node = RecordNode(number=self._next, record=record)
        self._next += 1
        self._nodes[node.number] = node
        return node

    def append(self, record: HistoryRecord, at_point: int) -> int:
        """Attach a record directly after ``at_point`` (may create a branch)."""
        parent = self.node(at_point)
        node = self._new_node(record)
        node.parents.append(parent.number)
        parent.children.append(node.number)
        self._bump()
        self._mutated("append", point=node.number, at_point=at_point,
                      record=record)
        return node.number

    def append_spliced(self, record: HistoryRecord, at_point: int) -> int:
        """The §5.3 insertion rule for in-flight task paths.

        A completed task belongs to the logical path anchored at its
        invocation cursor; ``at_point`` is that path's current tip.  If the
        tip is still a frontier the record is appended there.  If a rework
        meanwhile grew branches below the tip (Fig 5.6), the record is
        spliced in *before* those branches — it becomes the branches' new
        parent, and cached thread states downstream are patched with its
        objects (§5.3's cache-consistency rule).
        """
        current = self.node(at_point)
        if not current.children:
            return self.append(record, current.number)
        node = self._new_node(record)
        node.parents.append(current.number)
        node.children = list(current.children)
        for child_number in current.children:
            child = self.node(child_number)
            child.parents = [
                node.number if p == current.number else p
                for p in child.parents
            ]
        current.children = [node.number]
        added = frozenset(record.touched)
        for point in self.descendants(node.number):
            downstream = self.node(point)
            if downstream.cached_scope is not None:
                downstream.cached_scope = downstream.cached_scope | added
        # Downstream thread states gained the spliced record's objects: the
        # per-node caches were patched additively above, but epoch-keyed
        # full-result caches must recompute.
        self._bump(states_changed=True)
        self._mutated("append_spliced", point=node.number, at_point=at_point,
                      record=record)
        return node.number

    def add_junction(self, parents: list[int]) -> int:
        """Create a junction node joining several design points (thread join)."""
        if not parents:
            raise ThreadError("a junction needs at least one parent")
        node = self._new_node(None)
        for parent_number in parents:
            parent = self.node(parent_number)
            node.parents.append(parent.number)
            parent.children.append(node.number)
        self._bump()
        self._mutated("junction", point=node.number, parents=list(parents))
        return node.number

    def remove_points(self, points: set[int]) -> list[HistoryRecord]:
        """Remove a set of nodes (must not include the root); returns their
        records.  Children of removed nodes must themselves be removed."""
        if INITIAL_POINT in points:
            raise ThreadError("cannot remove the initial design point")
        for point in points:
            for child in self.node(point).children:
                if child not in points:
                    raise ThreadError(
                        f"removing point {point} would orphan point {child}"
                    )
        removed: list[HistoryRecord] = []
        for point in sorted(points):
            node = self._nodes.pop(point)
            if node.record is not None:
                removed.append(node.record)
            for parent_number in node.parents:
                if parent_number in self._nodes:
                    parent = self._nodes[parent_number]
                    parent.children = [c for c in parent.children if c != point]
        # Surviving per-node caches stay valid (no survivor descends from a
        # removed node), but result caches may hold the removed points.
        self._bump(states_changed=True)
        self._audit("erase", points=sorted(points), records=len(removed))
        self._mutated("erase", points=sorted(points))
        return removed

    def erase_subtree(self, point: int) -> list[HistoryRecord]:
        """Remove a point and everything after it (dead-end branch pruning)."""
        doomed = set(self.descendants(point)) | {point}
        return self.remove_points(doomed)

    # ------------------------------------------------------- stream grafting

    def graft(
        self,
        other: "ControlStream",
        at_point: int,
        other_start: int = INITIAL_POINT,
    ) -> dict[int, int]:
        """Copy ``other``'s nodes into this stream, attaching ``other``'s
        ``other_start`` point onto ``at_point``.  Returns the point mapping
        (other's numbering → this stream's numbering).

        Records are shared (they are conceptually immutable once committed);
        node structure is copied, so the source stream is unaffected.
        """
        mapping: dict[int, int] = {other_start: at_point}
        order = [other_start] + other.descendants(other_start)
        # Grafting root-onto-root preserves every copied point's backward
        # closure, so the source's per-node stride caches stay valid and can
        # ride along (the copy/cascade/join "warm start").  Any other anchor
        # changes what the grafted points can see — caches must not carry.
        carry = at_point == INITIAL_POINT and other_start == INITIAL_POINT
        for point in order:
            if point == other_start:
                continue
            src = other.node(point)
            node = self._new_node(src.record)
            if carry:
                node.cached_scope = src.cached_scope
            mapping[point] = node.number
        for point in order:
            if point == other_start:
                continue
            src = other.node(point)
            dst = self.node(mapping[point])
            for parent_number in src.parents:
                mapped = mapping.get(parent_number)
                if mapped is None:
                    # Parent outside the grafted region: attach to at_point.
                    mapped = at_point
                dst.parents.append(mapped)
                self.node(mapped).children.append(dst.number)
        self._bump()
        self._mutated("graft", at_point=at_point, points=len(mapping) - 1)
        return mapping

    def copy(self) -> tuple["ControlStream", dict[int, int]]:
        """A structural copy; returns the new stream and the point mapping."""
        fresh = ControlStream()
        mapping = fresh.graft(self, INITIAL_POINT, INITIAL_POINT)
        return fresh, mapping

    # --------------------------------------------------------------- queries

    def find_by_annotation(self, text: str) -> int | None:
        """First design point whose record carries the given annotation."""
        for point in sorted(self._nodes):
            node = self._nodes[point]
            if node.record is not None and node.record.annotation == text:
                return point
        return None

    def find_by_time(self, when: float) -> int | None:
        """First design point recorded at or after ``when`` (§5.2's
        hour-resolution random access generalized to exact time)."""
        best: tuple[float, int] | None = None
        for point, node in self._nodes.items():
            if node.record is None:
                continue
            t = node.record.recorded_at
            if t >= when and (best is None or (t, point) < best):
                best = (t, point)
        return best[1] if best else None

    # ----------------------------------------------------- reclamation hooks

    def splice_out(self, point: int) -> HistoryRecord:
        """Remove a single-parent node, re-linking its children to its parent
        (used by iterative-process abstraction, Fig 5.9)."""
        node = self.node(point)
        if point == INITIAL_POINT:
            raise ThreadError("cannot splice out the initial design point")
        if len(node.parents) != 1:
            raise ThreadError(
                f"point {point} has {len(node.parents)} parents; only "
                "single-parent nodes can be spliced out"
            )
        if node.record is None:
            raise ThreadError(f"point {point} is a junction, not a record")
        # The spliced-out record's objects vanish from every downstream
        # thread state, so the forward closure's cached scopes are stale.
        # Subtract-patching is unsafe (another record in the closure may
        # contribute the same name), so drop them outright.
        affected = self.descendants(point)
        parent = self.node(node.parents[0])
        parent.children = [c for c in parent.children if c != point]
        for child_number in node.children:
            child = self.node(child_number)
            child.parents = [
                parent.number if p == point else p for p in child.parents
            ]
            parent.children.append(child_number)
        del self._nodes[point]
        self._drop_cached_scopes(affected)
        self._bump(states_changed=True)
        self._audit("splice_out", point=point, task=node.record.task)
        self._mutated("splice_out", point=point)
        return node.record

    def replace_region(
        self, points: set[int], summary: HistoryRecord
    ) -> int:
        """Replace a root-anchored region with one summary record (horizontal
        aging, Fig 5.8).  Every parent of a region node must be in the region
        or be the root; boundary children re-parent onto the summary node."""
        if INITIAL_POINT in points:
            raise ThreadError("cannot replace the initial design point")
        for point in points:
            for parent in self.node(point).parents:
                if parent not in points and parent != INITIAL_POINT:
                    raise ThreadError(
                        f"region is not root-anchored: point {point} has "
                        f"parent {parent} outside the region"
                    )
        boundary: list[int] = []
        for point in points:
            for child in self.node(point).children:
                if child not in points:
                    boundary.append(child)
        summary_node = self._new_node(summary)
        summary_node.parents.append(INITIAL_POINT)
        root = self.node(INITIAL_POINT)
        root.children = [c for c in root.children if c not in points]
        root.children.append(summary_node.number)
        for child_number in boundary:
            child = self.node(child_number)
            child.parents = [
                summary_node.number if p in points else p
                for p in child.parents
            ]
            summary_node.children.append(child_number)
        for point in points:
            del self._nodes[point]
        # Boundary children and everything below them now see the summary's
        # (reduced) output set instead of the replaced records' objects.
        self._drop_cached_scopes(self.descendants(summary_node.number))
        self._bump(states_changed=True)
        self._audit("replace_region", points=sorted(points),
                    summary_point=summary_node.number,
                    summary_task=summary.task)
        self._mutated("replace_region", points=sorted(points),
                      summary_point=summary_node.number, summary=summary)
        return summary_node.number
